//! Criterion microbenchmarks for the trace-driven LLC simulator — the
//! substrate's raw throughput determines how large a trace the validation
//! suite can afford.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dicer_cachesim::{
    AccessKind, CacheConfig, ReplacementKind, SetAssocCache, StackDistanceProfiler, TraceGen,
    WriteBackCache,
};

fn small_cfg() -> CacheConfig {
    CacheConfig { size_bytes: 512 * 8 * 64, ways: 8, line_bytes: 64 }
}

fn bench_access_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache_access");
    let trace = TraceGen::Zipf { lines: 512 * 16, s: 0.9, seed: 1 }.generate(100_000);
    g.throughput(Throughput::Elements(trace.len() as u64));
    for kind in [ReplacementKind::Lru, ReplacementKind::Nru, ReplacementKind::Random] {
        g.bench_with_input(
            BenchmarkId::new("replacement", format!("{kind:?}")),
            &kind,
            |b, kind| {
                b.iter(|| {
                    let mut cache = SetAssocCache::new(small_cfg(), *kind);
                    let full = cache.config().full_mask();
                    for &line in &trace {
                        cache.access_line(line, 0, full);
                    }
                    cache.misses(0)
                })
            },
        );
    }
    g.finish();
}

fn bench_masked_access(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache_access_masked");
    let trace = TraceGen::WorkingSet { lines: 512 * 4, seed: 2 }.generate(100_000);
    g.throughput(Throughput::Elements(trace.len() as u64));
    for ways in [1u32, 4, 8] {
        let mask = (1u32 << ways) - 1;
        g.bench_with_input(BenchmarkId::new("ways", ways), &mask, |b, &mask| {
            b.iter(|| {
                let mut cache = SetAssocCache::new(small_cfg(), ReplacementKind::Lru);
                for &line in &trace {
                    cache.access_line(line, 0, mask);
                }
                cache.miss_ratio(0)
            })
        });
    }
    g.finish();
}

fn bench_stack_distance(c: &mut Criterion) {
    let mut g = c.benchmark_group("stack_distance");
    for lines in [256u64, 1024, 4096] {
        let trace = TraceGen::WorkingSet { lines, seed: 3 }.generate(50_000);
        g.throughput(Throughput::Elements(trace.len() as u64));
        g.bench_with_input(BenchmarkId::new("footprint_lines", lines), &trace, |b, trace| {
            b.iter(|| {
                let mut p = StackDistanceProfiler::new();
                p.access_all(trace.iter().copied());
                p.miss_ratio_at(1024)
            })
        });
    }
    g.finish();
}

fn bench_trace_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_generation");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("stream", |b| b.iter(|| TraceGen::Stream.generate(100_000)));
    g.bench_function("working_set", |b| {
        b.iter(|| TraceGen::WorkingSet { lines: 4096, seed: 4 }.generate(100_000))
    });
    g.bench_function("zipf", |b| {
        b.iter(|| TraceGen::Zipf { lines: 8192, s: 1.0, seed: 5 }.generate(100_000))
    });
    g.finish();
}

fn bench_writeback_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("writeback_cache");
    let trace = TraceGen::Zipf { lines: 512 * 16, s: 0.9, seed: 6 }.generate(100_000);
    g.throughput(Throughput::Elements(trace.len() as u64));
    for write_every in [0usize, 4, 1] {
        let label = match write_every {
            0 => "reads_only",
            1 => "writes_only",
            _ => "mixed_1_in_4",
        };
        g.bench_with_input(BenchmarkId::from_parameter(label), &write_every, |b, &we| {
            b.iter(|| {
                let mut cache = WriteBackCache::new(small_cfg());
                let full = cache.config().full_mask();
                for (i, &line) in trace.iter().enumerate() {
                    let kind = if we != 0 && i % we.max(1) == 0 {
                        AccessKind::Write
                    } else {
                        AccessKind::Read
                    };
                    cache.access_line(line, 0, full, kind);
                }
                cache.traffic_bytes(0)
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_access_throughput,
    bench_masked_access,
    bench_stack_distance,
    bench_trace_generation,
    bench_writeback_cache
);
criterion_main!(benches);
