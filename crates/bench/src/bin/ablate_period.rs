//! Ablation: monitoring-period length `T` (Table 1 fixes T = 1 s).

use dicer_experiments::ablation;

fn main() {
    dicer_bench::banner("Ablation: monitoring period T");
    let (catalog, _solo) = dicer_bench::setup();
    let sweep = ablation::sweep_period(&catalog, &[0.25, 0.5, 1.0, 2.0, 4.0]);
    print!("{}", sweep.render());
    dicer_bench::write_json("ablate_period", &sweep).expect("write results");
}
