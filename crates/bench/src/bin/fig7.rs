//! Regenerates Figure 7: % of workloads achieving each HP SLO vs cores.

use dicer_experiments::figures::fig7;

fn main() {
    dicer_bench::banner("Figure 7: SLO conformance vs cores");
    let (catalog, solo) = dicer_bench::setup();
    let set = dicer_bench::load_or_classify(&catalog, &solo);
    let matrix = dicer_bench::load_or_matrix(&catalog, &solo, &set);
    let fig = fig7::run(&matrix);
    print!("{}", fig.render());
    let path = dicer_bench::write_json("fig7", &fig).expect("write results");
    println!("JSON: {}", path.display());
}
