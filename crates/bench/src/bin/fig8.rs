//! Regenerates Figure 8: geomean SUCI vs cores for each SLO and lambda.

use dicer_experiments::figures::fig8;

fn main() {
    dicer_bench::banner("Figure 8: geomean SUCI vs cores");
    let (catalog, solo) = dicer_bench::setup();
    let set = dicer_bench::load_or_classify(&catalog, &solo);
    let matrix = dicer_bench::load_or_matrix(&catalog, &solo, &set);
    let fig = fig8::run(&matrix);
    print!("{}", fig.render());
    let path = dicer_bench::write_json("fig8", &fig).expect("write results");
    println!("JSON: {}", path.display());
}
