//! Regenerates Figure 2: CDF of the minimum LLC ways needed, solo, for
//! 90/95/99% of full-cache performance.

use dicer_experiments::figures::fig2;

fn main() {
    dicer_bench::banner("Figure 2: minimum solo LLC allocation CDF");
    let (catalog, solo) = dicer_bench::setup();
    let fig = fig2::run(&catalog, &solo);
    print!("{}", fig.render());
    println!(
        "at 6 ways: {:.0}% of apps reach 99% of peak (paper: ~50% with <=6 ways)",
        fig.fraction_at(0.99, 6) * 100.0
    );
    println!(
        "at 5 ways: {:.0}% of apps reach 90% of peak (paper: ~90% with <=5 ways)",
        fig.fraction_at(0.90, 5) * 100.0
    );
    let path = dicer_bench::write_json("fig2", &fig).expect("write results");
    println!("JSON: {}", path.display());
}
