//! Regenerates Table 1 (system configuration).

use dicer_experiments::figures::table1;

fn main() {
    dicer_bench::banner("Table 1: system configuration");
    let t = table1::run();
    print!("{}", t.render());
    let path = dicer_bench::write_json("table1", &t).expect("write results");
    println!("JSON: {}", path.display());
}
