//! Model validation: compares the analytic (parametric) miss curves driving
//! the fast sweeps against empirical curves extracted from the trace-driven
//! way-masked cache simulator, per archetype.

use dicer_appmodel::{calibrate, Archetype, MissCurve};
use dicer_cachesim::CacheConfig;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    archetype: String,
    fitted: String,
    mean_abs_error: f64,
}

fn main() {
    dicer_bench::banner("Model validation: parametric vs trace-driven miss curves");
    // Scaled-down geometry (same associativity granularity, 512 sets).
    let cfg = CacheConfig { size_bytes: 512 * 8 * 64, ways: 8, line_bytes: 64 };
    let mut rows = Vec::new();
    println!("{:<18} {:>10}   fitted parametric curve", "archetype", "mean |err|");
    for archetype in Archetype::ALL {
        let emp = calibrate::empirical_curve(archetype, &cfg, 300_000, 42);
        let fit = calibrate::fit_parametric(&emp, cfg.ways);
        let err = calibrate::curve_distance(&emp, &fit, cfg.ways);
        let desc = match &fit {
            MissCurve::Parametric { floor, ceil, w_half, steepness } => format!(
                "floor {floor:.2}, ceil {ceil:.2}, w_half {w_half:.1}, steep {steepness:.1}"
            ),
            MissCurve::Empirical(_) => unreachable!("fit is parametric"),
        };
        println!("{:<18} {:>10.4}   {desc}", archetype.to_string(), err);
        rows.push(Row { archetype: archetype.to_string(), fitted: desc, mean_abs_error: err });
    }
    dicer_bench::write_json("validate_model", &rows).expect("write results");
    println!("\nThe parametric family used in the sweeps tracks the trace-driven");
    println!("simulator to within a few points of miss ratio per archetype.");
}
