//! `fleet_bench` — wall-clock benchmark of the fleet node fan-out.
//!
//! Runs the same 500-node × 1000-round fleet twice — once on the serial
//! runner, once on an 8-worker pool — and asserts the two things the
//! fleet layer promises:
//!
//! 1. **Byte identity**: the serialized [`FleetOutcome`] of the parallel
//!    run is byte-for-byte the serial one (the determinism contract at
//!    bench scale, complementing `tests/fleet_determinism.rs`).
//! 2. **Speedup**: when the rayon pool is genuinely parallel (probed at
//!    runtime — a stubbed/serial rayon build reports no worker indices),
//!    the parallel run must be at least [`MIN_SPEEDUP`]× faster.
//!
//! Writes `results/BENCH_fleet.json`; `scripts/ci.sh` (full tier) gates
//! `serial_s` regressions beyond 15 % against the committed baseline and
//! requires `byte_identical` to be true. The JSON is hand-rolled so the
//! artifact does not depend on a serde backend.

use std::time::Instant;

use dicer_experiments::SweepRunner;
use dicer_fleet::{Fleet, FleetConfig, SchedulerKind};

/// Fleet size: large enough that per-round fan-out dominates setup cost.
const NODES: usize = 500;
/// Rounds per run (one monitoring period per node per round).
const ROUNDS: u32 = 1000;
/// Churn seed (any fixed value works; byte identity is per-seed).
const SEED: u64 = 42;
/// Workers on the parallel run.
const JOBS: usize = 8;
/// Required speedup when the pool is genuinely parallel.
const MIN_SPEEDUP: f64 = 4.0;

/// Round-robin placement: the cheapest scheduler, so the measurement is
/// the node-stepping fan-out itself, not scheduler bookkeeping.
const SCHEDULER: SchedulerKind = SchedulerKind::RoundRobin;

/// One timed fleet run; returns the serialized outcome and the seconds
/// spent inside `run` (node/pool construction excluded).
fn timed_run(runner: &SweepRunner) -> (String, f64) {
    let cfg = FleetConfig::standard(NODES, ROUNDS, SEED);
    let scheduler = SCHEDULER.build(
        cfg.seed,
        cfg.server.link.capacity_gbps,
        cfg.server.cache.ways,
        cfg.degraded_streak,
    );
    let mut fleet = Fleet::new(cfg, scheduler);
    let start = Instant::now();
    let outcome = fleet.run(runner);
    (outcome.to_json(), start.elapsed().as_secs_f64())
}

/// Whether `runner` actually fans work out across rayon workers. A
/// stubbed (fully serial) rayon — or a 1-worker pool — never reports
/// more than one distinct worker index, and in that case the speedup
/// assertion would be meaningless.
fn genuinely_parallel(runner: &SweepRunner) -> bool {
    let mut slots: Vec<Option<usize>> = vec![None; 256];
    runner.map_mut(&mut slots, |slot| {
        // A little spin so the batch cannot be drained by one worker
        // before the others wake up.
        let mut acc = 0u64;
        for i in 0..20_000u64 {
            acc = acc.wrapping_add(i).rotate_left(7);
        }
        std::hint::black_box(acc);
        *slot = rayon::current_thread_index();
    });
    let mut seen: Vec<usize> = slots.into_iter().flatten().collect();
    seen.sort_unstable();
    seen.dedup();
    seen.len() > 1
}

fn main() {
    dicer_bench::banner("fleet_bench: 500-node fleet, serial vs parallel");
    println!(
        "   {NODES} nodes x {ROUNDS} rounds, seed {SEED}, scheduler {}",
        SCHEDULER.name()
    );

    let serial_runner = SweepRunner::serial();
    let parallel_runner = SweepRunner::with_jobs(JOBS);
    let genuine = genuinely_parallel(&parallel_runner);

    let (serial_json, serial_s) = timed_run(&serial_runner);
    println!("   serial   ({} worker):  {serial_s:8.3} s", serial_runner.jobs());
    let (parallel_json, parallel_s) = timed_run(&parallel_runner);
    println!("   parallel ({JOBS} workers): {parallel_s:8.3} s");

    let byte_identical = serial_json == parallel_json;
    assert!(
        byte_identical,
        "parallel fleet outcome diverged from serial (determinism contract broken)"
    );

    let speedup = serial_s / parallel_s;
    println!("   speedup: {speedup:.2}x (pool genuinely parallel: {genuine})");
    if genuine {
        assert!(
            speedup >= MIN_SPEEDUP,
            "parallel fleet run must be >= {MIN_SPEEDUP}x faster on a real pool, got {speedup:.2}x"
        );
    } else {
        println!("   (serial rayon build: speedup assertion skipped)");
    }

    // Hand-rolled artifact: the shared serde writer is off-limits here
    // because this file must stay truthful even under a stubbed serde.
    let json = format!(
        "{{\n  \"nodes\": {NODES},\n  \"rounds\": {ROUNDS},\n  \"seed\": {SEED},\n  \
         \"scheduler\": \"{}\",\n  \"jobs\": {JOBS},\n  \"serial_s\": {serial_s:.3},\n  \
         \"parallel_s\": {parallel_s:.3},\n  \"speedup\": {speedup:.3},\n  \
         \"parallel_genuine\": {genuine},\n  \"byte_identical\": {byte_identical}\n}}\n",
        SCHEDULER.name()
    );
    let dir = std::path::Path::new(dicer_bench::RESULTS_DIR);
    std::fs::create_dir_all(dir).expect("results dir");
    let path = dir.join("BENCH_fleet.json");
    std::fs::write(&path, json).expect("write BENCH_fleet.json");
    println!("   wrote {}", path.display());
}
