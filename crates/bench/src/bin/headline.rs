//! Regenerates the paper's headline claims from the Fig. 6/7 aggregates.

use dicer_experiments::figures::{fig6, fig7, headline};

fn main() {
    dicer_bench::banner("Headline claims");
    let (catalog, solo) = dicer_bench::setup();
    let set = dicer_bench::load_or_classify(&catalog, &solo);
    let matrix = dicer_bench::load_or_matrix(&catalog, &solo, &set);
    let f6 = fig6::run(&matrix);
    let f7 = fig7::run(&matrix);
    let h = headline::run(&f6, &f7, solo.config().n_cores);
    print!("{}", h.render());
    let path = dicer_bench::write_json("headline", &h).expect("write results");
    println!("JSON: {}", path.display());
}
