//! Ablation: DICER vs DICER+MBA (the paper's future-work extension) on the
//! standard panel — does throttling the BEs' memory requests protect the HP
//! further, and at what BE cost?

use dicer_experiments::ablation;
use dicer_policy::{DicerConfig, PolicyKind};

fn main() {
    dicer_bench::banner("Ablation: DICER vs DICER+MBA");
    let (catalog, solo) = dicer_bench::setup();
    let points = vec![
        ablation::run_panel(&catalog, &solo, &PolicyKind::Dicer(DicerConfig::default()), "DICER"),
        ablation::run_panel(
            &catalog,
            &solo,
            &PolicyKind::DicerMba(DicerConfig::default()),
            "DICER+MBA",
        ),
        ablation::run_panel(&catalog, &solo, &PolicyKind::CacheTakeover, "CT"),
        ablation::run_panel(&catalog, &solo, &PolicyKind::Unmanaged, "UM"),
    ];
    let sweep = ablation::Ablation { knob: "bandwidth control (MBA)".into(), points };
    print!("{}", sweep.render());
    dicer_bench::write_json("ablate_mba", &sweep).expect("write results");
}
