//! Ablation: the allocation-sampling ladder (the paper only prescribes
//! "decreasing LLC partition sizes") and the post-sampling cool-down this
//! implementation adds.

use dicer_experiments::ablation;
use dicer_policy::{DicerConfig, SamplingStrategy};

fn main() {
    dicer_bench::banner("Ablation: sampling strategy and cool-down");
    let (catalog, solo) = dicer_bench::setup();

    let strat = ablation::sweep_dicer_configs(
        &catalog,
        &solo,
        "sampling ladder",
        vec![
            ("linear-1".into(), DicerConfig { sampling: SamplingStrategy::Linear { step: 1 }, ..Default::default() }),
            ("linear-3".into(), DicerConfig { sampling: SamplingStrategy::Linear { step: 3 }, ..Default::default() }),
            ("geometric".into(), DicerConfig { sampling: SamplingStrategy::Geometric, ..Default::default() }),
            ("coarse".into(), DicerConfig { sampling: SamplingStrategy::Custom(vec![19, 10, 4, 1]), ..Default::default() }),
        ],
    );
    print!("{}", strat.render());
    dicer_bench::write_json("ablate_sampling", &strat).expect("write results");

    let cooldown = ablation::sweep_dicer_configs(
        &catalog,
        &solo,
        "sampling cool-down (this implementation's addition)",
        [1u32, 5, 10, 40]
            .into_iter()
            .map(|p| {
                (
                    format!("cooldown={p}"),
                    DicerConfig {
                        sampling_cooldown_periods: p,
                        max_cooldown_periods: (8 * p).max(80),
                        ..Default::default()
                    },
                )
            })
            .collect(),
    );
    print!("{}", cooldown.render());
    dicer_bench::write_json("ablate_cooldown", &cooldown).expect("write results");
}
