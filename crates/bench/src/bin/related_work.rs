//! Related-work comparison (paper §5): DICER vs DCP-QoS, its closest
//! predecessor, which "lacks support for identifying and mitigating memory
//! bandwidth saturation". The panel shows the two coincide on CT-Favoured
//! dynamics and diverge exactly on saturating (CT-Thwarted) workloads.

use dicer_experiments::ablation;
use dicer_experiments::runner::run_colocation_with;
use dicer_policy::{DicerConfig, PolicyKind};

fn main() {
    dicer_bench::banner("Related work: DICER vs DCP-QoS");
    let (catalog, solo) = dicer_bench::setup();

    let points = vec![
        ablation::run_panel(&catalog, &solo, &PolicyKind::Dicer(DicerConfig::default()), "DICER"),
        ablation::run_panel(&catalog, &solo, &PolicyKind::DcpQos, "DCP-QOS"),
    ];
    let sweep = ablation::Ablation { knob: "saturation handling (DICER vs DCP-QoS)".into(), points };
    print!("{}", sweep.render());
    dicer_bench::write_json("related_work", &sweep).expect("write results");

    // The divergence case: the Fig. 3 saturating workload.
    println!("\nFig. 3 workload (milc + 9x gcc — persistent bandwidth saturation):");
    for kind in [PolicyKind::Dicer(DicerConfig::default()), PolicyKind::DcpQos] {
        let hp = catalog.get("milc1").unwrap();
        let be = catalog.get("gcc_base1").unwrap();
        let out = run_colocation_with(&solo, hp, be, 10, &kind);
        println!(
            "  {:<8} HP norm {:.3}  BE norm {:.3}  EFU {:.3}",
            out.policy,
            out.hp_norm_ipc,
            out.be_norm_ipc_mean(),
            out.efu
        );
    }
}
