//! Serial vs. parallel sweep benchmark: runs the panel evaluation matrix
//! once on one worker and once on every available core, proves the two
//! outputs byte-identical, and records the wall-clock speedup in
//! `results/BENCH_sweep.json`.

use dicer_appmodel::Catalog;
use dicer_experiments::figures::EvalMatrix;
use dicer_experiments::{ablation::PANEL, SoloTable, SweepRunner, WorkloadSet};
use dicer_policy::{DicerConfig, PolicyKind};
use dicer_server::ServerConfig;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct SweepBench {
    /// Panel workloads × policies evaluated per run.
    cells: usize,
    /// Workers used by the parallel run.
    jobs: usize,
    serial_s: f64,
    parallel_s: f64,
    /// `serial_s / parallel_s`.
    speedup: f64,
    /// Whether the parallel matrix serialised byte-identically to the
    /// serial one (the run aborts before writing if it did not).
    byte_identical: bool,
}

fn run_matrix(catalog: &Catalog, solo: &SoloTable, sweep: &SweepRunner) -> String {
    let set = WorkloadSet::classify_pairs(catalog, solo, &PANEL, sweep);
    let sample: Vec<_> = set.all.iter().collect();
    let policies = [
        PolicyKind::Unmanaged,
        PolicyKind::CacheTakeover,
        PolicyKind::Dicer(DicerConfig::default()),
    ];
    let m = EvalMatrix::run_with(catalog, solo, &sample, &[10], &policies, sweep);
    serde_json::to_string(&m).expect("matrix serialises")
}

fn main() {
    dicer_bench::banner("sweep determinism + speedup (panel matrix, serial vs parallel)");
    let catalog = Catalog::paper();
    let solo = SoloTable::build(&catalog, ServerConfig::table1());

    let serial = SweepRunner::serial();
    let parallel = SweepRunner::auto();
    println!("parallel run uses {} workers", parallel.jobs());

    let t0 = Instant::now();
    let serial_json = run_matrix(&catalog, &solo, &serial);
    let serial_s = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let parallel_json = run_matrix(&catalog, &solo, &parallel);
    let parallel_s = t1.elapsed().as_secs_f64();

    assert_eq!(
        serial_json, parallel_json,
        "parallel sweep must serialise byte-identically to the serial one"
    );

    let out = SweepBench {
        cells: PANEL.len() * 3,
        jobs: parallel.jobs(),
        serial_s,
        parallel_s,
        speedup: serial_s / parallel_s,
        byte_identical: true,
    };
    println!(
        "serial {serial_s:.2}s, parallel {parallel_s:.2}s on {} workers -> {:.2}x, byte-identical",
        out.jobs, out.speedup
    );
    dicer_bench::write_json("BENCH_sweep", &out).expect("write results");
}
