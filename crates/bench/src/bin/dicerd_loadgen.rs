//! `dicerd` load generator: hammers an in-process daemon with many
//! concurrent keep-alive clients and writes `results/BENCH_dicerd.json`
//! with request throughput and latency percentiles.
//!
//! The daemon is started inside this process on an ephemeral port with
//! its default workload (`milc1` + 9× `gcc_base1` under DICER), so the
//! measurement includes the realistic condition: the simulation thread
//! is saturating one core and feeding telemetry while the event loop
//! serves `/metrics` renders, `/events` drains and `/healthz` probes
//! from one network thread.
//!
//! Every response is strictly validated (status line, `Content-Length`,
//! exact body length) and the run aborts if even one is malformed — the
//! bench doubles as the concurrency correctness check of the netd
//! runtime.
//!
//! ```text
//! dicerd_loadgen [--clients N] [--requests N] [--out PATH]
//! ```
//!
//! `scripts/ci.sh` (full tier) re-runs this binary and gates on the
//! committed baseline: a >15% drop of requests/sec fails CI
//! (`--update-baselines` refreshes the baseline instead).
//!
//! The JSON is rendered by hand rather than through serde so the
//! artifact is identical no matter which serde backend the build uses.

use dicer::cli::parse_flags;
use dicer::daemon::{Daemon, DaemonConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::ExitCode;
use std::time::{Duration, Instant};

/// Concurrent clients (each one thread holding one keep-alive conn).
const DEFAULT_CLIENTS: usize = 12;
/// Requests issued per client.
const DEFAULT_REQUESTS: usize = 400;

/// The request mix, rotated per request index. `/metrics` dominates the
/// real scrape traffic; `/events` exercises the ring drain; `/healthz`
/// is the cheap probe.
const PATHS: [&str; 3] = ["/metrics", "/events?n=50", "/healthz"];

/// One strictly validated keep-alive request/response round trip.
/// Returns the latency on success, a description of the malformation
/// otherwise.
fn round_trip(reader: &mut BufReader<TcpStream>, path: &str) -> Result<Duration, String> {
    let t0 = Instant::now();
    reader
        .get_mut()
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: dicerd\r\n\r\n").as_bytes())
        .map_err(|e| format!("write: {e}"))?;
    let mut status = String::new();
    reader.read_line(&mut status).map_err(|e| format!("status read: {e}"))?;
    if !status.starts_with("HTTP/1.1 200 OK") {
        return Err(format!("bad status line {status:?}"));
    }
    let mut content_length: Option<usize> = None;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).map_err(|e| format!("header read: {e}"))?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line.strip_prefix("Content-Length: ") {
            content_length = Some(v.parse().map_err(|e| format!("bad length: {e}"))?);
        }
    }
    let n = content_length.ok_or("no Content-Length header")?;
    let mut body = vec![0u8; n];
    reader.read_exact(&mut body).map_err(|e| format!("body read: {e}"))?;
    if body.is_empty() {
        return Err("empty body".to_string());
    }
    Ok(t0.elapsed())
}

/// One client: `requests` sequential round trips on a single keep-alive
/// connection, rotating through the path mix. Returns the latencies, or
/// the first malformation seen.
fn client(addr: SocketAddr, id: usize, requests: usize) -> Result<Vec<Duration>, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| format!("timeout: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut latencies = Vec::with_capacity(requests);
    for i in 0..requests {
        let path = PATHS[(id + i) % PATHS.len()];
        latencies
            .push(round_trip(&mut reader, path).map_err(|e| format!("request {i} {path}: {e}"))?);
    }
    Ok(latencies)
}

/// Percentile over a sorted slice, nearest-rank.
fn percentile_us(sorted: &[Duration], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx].as_secs_f64() * 1e6
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flags = match parse_flags(&args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}\nusage: dicerd_loadgen [--clients N] [--requests N] [--out PATH]");
            return ExitCode::from(2);
        }
    };
    let usize_flag = |key: &str, default: usize| -> usize {
        flags.get(key).and_then(|v| v.parse().ok()).unwrap_or(default)
    };
    let clients = usize_flag("clients", DEFAULT_CLIENTS).max(1);
    let requests = usize_flag("requests", DEFAULT_REQUESTS).max(1);
    let out_path =
        flags.get("out").cloned().unwrap_or_else(|| "results/BENCH_dicerd.json".to_string());

    println!("== DICER reproduction :: dicerd load test (netd event loop) ==");
    println!("{clients} concurrent clients x {requests} keep-alive requests, mix {PATHS:?}");

    let daemon = match Daemon::start(DaemonConfig { port: 0, ..Default::default() }) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("cannot start daemon: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = daemon.addr();

    let t0 = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|id| std::thread::spawn(move || client(addr, id, requests)))
        .collect();
    let mut latencies: Vec<Duration> = Vec::with_capacity(clients * requests);
    let mut failures: Vec<String> = Vec::new();
    for (id, h) in handles.into_iter().enumerate() {
        match h.join().expect("client thread panicked") {
            Ok(mut l) => latencies.append(&mut l),
            Err(e) => failures.push(format!("client {id}: {e}")),
        }
    }
    let elapsed = t0.elapsed().as_secs_f64();

    // Clean shutdown through the public API, like any other client.
    let quit = TcpStream::connect(addr)
        .map_err(|e| e.to_string())
        .and_then(|s| {
            let mut reader = BufReader::new(s);
            round_trip(&mut reader, "/quit").map(|_| ())
        });
    if let Err(e) = quit {
        failures.push(format!("/quit: {e}"));
    }
    if let Err(e) = daemon.join() {
        failures.push(e);
    }

    if !failures.is_empty() {
        eprintln!("{} malformed/failed interactions:", failures.len());
        for f in &failures {
            eprintln!("  {f}");
        }
        return ExitCode::FAILURE;
    }

    latencies.sort_unstable();
    let total = latencies.len();
    let rps = total as f64 / elapsed;
    let (p50, p99, p999) = (
        percentile_us(&latencies, 0.50),
        percentile_us(&latencies, 0.99),
        percentile_us(&latencies, 0.999),
    );
    println!(
        "{total} requests in {elapsed:.2}s -> {rps:.0} req/s \
         (p50 {p50:.0}us, p99 {p99:.0}us, p999 {p999:.0}us, 0 malformed)"
    );

    // Hand-rendered JSON: stable key order, one artifact schema
    // regardless of the serde backend.
    let json = format!(
        "{{\n  \"bench\": \"dicerd_loadgen\",\n  \"clients\": {clients},\n  \
         \"requests_per_client\": {requests},\n  \"total_requests\": {total},\n  \
         \"malformed\": 0,\n  \"elapsed_s\": {elapsed:.3},\n  \
         \"requests_per_sec\": {rps:.1},\n  \"latency_us\": {{\n    \
         \"p50\": {p50:.1},\n    \"p99\": {p99:.1},\n    \"p999\": {p999:.1}\n  }},\n  \
         \"mix\": [\"/metrics\", \"/events?n=50\", \"/healthz\"]\n}}\n"
    );
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }
    if let Err(e) = std::fs::write(&out_path, json) {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path}");
    ExitCode::SUCCESS
}
