//! Span-tracing overhead benchmark: runs the panel matrix sweep — solo
//! profiling, pair classification, and the evaluation matrix, the same
//! pipeline as `dicer-sim matrix` — once on a plain runner and once on a
//! tracer-attached runner emitting every span to a live sink, proves the
//! two outputs byte-identical, and asserts the traced sweep stays within
//! the overhead budget. Records the measurement (plus an informational
//! full-depth number) in `results/BENCH_trace_overhead.json`.
//!
//! Two tracing granularities are measured:
//!
//! - **sweep-level** (asserted `< 3%`): the production default — a tracer
//!   attached to the `SweepRunner`, one `sweep_job` span per job. This is
//!   what "the matrix sweep with tracing enabled" runs.
//! - **full depth** (informational): every co-location also traced per
//!   period (session → period → sensor-read / policy-step / solve spans).
//!   The memoized simulator steps a period in ~1–2 µs, so fixed ~40 ns
//!   span costs are a visible fraction of *simulated* work at this depth;
//!   against the 1 s real-time periods the system models they are noise.
//!   DESIGN.md §11 discusses the trade.
//!
//! Timing is best-of-`REPEATS`, alternating modes, so a transient stall
//! cannot charge one side unfairly.

use dicer_appmodel::Catalog;
use dicer_experiments::figures::EvalMatrix;
use dicer_experiments::runner::{run_colocation_traced, MAX_PERIODS};
use dicer_experiments::{ablation::PANEL, SoloTable, SweepRunner, WorkloadSet};
use dicer_policy::{DicerConfig, PolicyKind};
use dicer_server::ServerConfig;
use dicer_telemetry::{Telemetry, TelemetryEvent, TelemetrySink, Tracer};
use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Overhead budget for the sweep-level traced matrix.
const LIMIT_PCT: f64 = 3.0;
const REPEATS: usize = 3;

/// Counts events and drops them — the cheapest live sink, so the
/// measurement captures span *emission* cost, not a consumer's.
#[derive(Default)]
struct CountingSink {
    events: AtomicU64,
}

impl TelemetrySink for CountingSink {
    fn emit(&self, _event: &TelemetryEvent) {
        self.events.fetch_add(1, Ordering::Relaxed);
    }
}

#[derive(Serialize)]
struct TraceOverheadBench {
    /// Panel co-locations per matrix cell row.
    pairs: usize,
    /// Sweep workers.
    jobs: usize,
    /// Timed repetitions per mode (best-of wins).
    repeats: usize,
    /// Full matrix pipeline, plain runner (seconds, best-of).
    untraced_s: f64,
    /// Full matrix pipeline, tracer-attached runner (seconds, best-of).
    traced_s: f64,
    /// `(traced_s / untraced_s - 1) * 100` — asserted `< limit_pct`.
    overhead_pct: f64,
    limit_pct: f64,
    /// Spans one traced matrix pipeline emits.
    spans_per_matrix: u64,
    /// Informational: panel co-locations traced down to per-period spans,
    /// relative to the same runs untraced. Span cost is fixed per span,
    /// so against the microsecond-scale memoized simulator this is large
    /// by construction; it is not the production default.
    full_depth_overhead_pct: f64,
    /// Spans one full-depth panel sweep emits.
    full_depth_spans: u64,
    /// Whether traced and untraced outputs matched byte-for-byte at both
    /// depths (the run aborts before writing if not).
    identical: bool,
}

/// The `dicer-sim matrix` pipeline on a given runner, serialised for the
/// byte-identity check.
fn run_matrix(catalog: &Catalog, sweep: &SweepRunner) -> String {
    let solo = SoloTable::build_with(catalog, ServerConfig::table1(), sweep);
    let set = WorkloadSet::classify_pairs(catalog, &solo, &PANEL, sweep);
    let sample: Vec<_> = set.all.iter().collect();
    let policies = [
        PolicyKind::Unmanaged,
        PolicyKind::CacheTakeover,
        PolicyKind::Dicer(DicerConfig::default()),
    ];
    let m = EvalMatrix::run_with(catalog, &solo, &sample, &[10], &policies, sweep);
    serde_json::to_string(&m).expect("matrix serialises")
}

/// Panel co-locations with per-period tracing (the informational depth).
fn run_panel_deep(
    catalog: &Catalog,
    solo: &SoloTable,
    sweep: &SweepRunner,
    tracer: &Tracer,
) -> Vec<(f64, f64, u32)> {
    let policy = PolicyKind::Dicer(DicerConfig::default());
    sweep.map_traced(&PANEL, tracer, |&(hp, be), jt| {
        let hp = catalog.get(hp).expect("panel app");
        let be = catalog.get(be).expect("panel app");
        let out = run_colocation_traced(
            solo,
            hp,
            be,
            10,
            &policy,
            MAX_PERIODS,
            &Telemetry::off(),
            jt,
        );
        (out.hp_norm_ipc, out.efu, out.periods)
    })
}

fn main() {
    dicer_bench::banner("span tracing overhead (panel matrix sweep, traced vs untraced)");
    let catalog = Catalog::paper();
    let sink = Arc::new(CountingSink::default());
    let tracer = Tracer::new(Telemetry::new(sink.clone()));
    let plain = SweepRunner::auto();
    let traced = SweepRunner::auto().with_tracer(&tracer);
    println!("{} panel pairs on {} workers, best of {REPEATS}", PANEL.len(), plain.jobs());

    // Untimed warm-up of both modes (populates page cache, pools).
    let baseline = run_matrix(&catalog, &plain);
    assert_eq!(baseline, run_matrix(&catalog, &traced), "tracing must not perturb the matrix");
    let spans_per_matrix = sink.events.swap(0, Ordering::Relaxed);

    let (mut untraced_s, mut traced_s) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..REPEATS {
        let t0 = Instant::now();
        assert_eq!(run_matrix(&catalog, &plain), baseline);
        untraced_s = untraced_s.min(t0.elapsed().as_secs_f64());

        let t1 = Instant::now();
        assert_eq!(run_matrix(&catalog, &traced), baseline);
        traced_s = traced_s.min(t1.elapsed().as_secs_f64());
    }
    let overhead_pct = (traced_s / untraced_s - 1.0) * 100.0;
    println!(
        "matrix sweep: untraced {untraced_s:.3} s, traced {traced_s:.3} s -> \
         overhead {overhead_pct:+.2}% ({spans_per_matrix} spans, budget {LIMIT_PCT}%)"
    );

    // Informational full-depth measurement: per-period session tracing.
    sink.events.store(0, Ordering::Relaxed);
    let solo = SoloTable::build_with(&catalog, ServerConfig::table1(), &plain);
    let deep_base = run_panel_deep(&catalog, &solo, &plain, &Tracer::off());
    let deep_traced = run_panel_deep(&catalog, &solo, &plain, &tracer);
    assert_eq!(deep_base, deep_traced, "full-depth tracing must not perturb outcomes");
    let full_depth_spans = sink.events.swap(0, Ordering::Relaxed);
    let (mut deep_off_s, mut deep_on_s) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..REPEATS {
        let t0 = Instant::now();
        assert_eq!(run_panel_deep(&catalog, &solo, &plain, &Tracer::off()), deep_base);
        deep_off_s = deep_off_s.min(t0.elapsed().as_secs_f64());
        let t1 = Instant::now();
        assert_eq!(run_panel_deep(&catalog, &solo, &plain, &tracer), deep_base);
        deep_on_s = deep_on_s.min(t1.elapsed().as_secs_f64());
    }
    let full_depth_overhead_pct = (deep_on_s / deep_off_s - 1.0) * 100.0;
    println!(
        "full depth:   untraced {deep_off_s:.3} s, traced {deep_on_s:.3} s -> \
         overhead {full_depth_overhead_pct:+.2}% ({full_depth_spans} spans, informational)"
    );

    assert!(
        overhead_pct < LIMIT_PCT,
        "span tracing overhead {overhead_pct:.2}% exceeds the {LIMIT_PCT}% budget"
    );

    let bench = TraceOverheadBench {
        pairs: PANEL.len(),
        jobs: plain.jobs(),
        repeats: REPEATS,
        untraced_s,
        traced_s,
        overhead_pct,
        limit_pct: LIMIT_PCT,
        spans_per_matrix,
        full_depth_overhead_pct,
        full_depth_spans,
        identical: true,
    };
    let path = dicer_bench::write_json("BENCH_trace_overhead", &bench).expect("write bench json");
    println!("wrote {}", path.display());
}
