//! Controller dynamics: how often DICER samples, shrinks, resets and
//! detects phase changes across the ablation panel — the behavioural
//! breakdown behind the end-to-end numbers.

use dicer_appmodel::Catalog;
use dicer_experiments::{ablation::PANEL, Session, SoloTable};
use dicer_policy::{Dicer, DicerConfig};
use dicer_server::{Server, ServerConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    workload: String,
    ct_favoured: bool,
    final_hp_ways: u32,
    periods: u32,
    sampling_periods: u64,
    shrinks: u64,
    resets: u64,
    phase_changes: u64,
    saturated_periods: u64,
}

fn main() {
    dicer_bench::banner("DICER controller dynamics across the panel");
    let catalog = Catalog::paper();
    let cfg = ServerConfig::table1();
    let _solo = SoloTable::build(&catalog, cfg);

    let mut rows = Vec::new();
    println!(
        "{:<28} {:>5} {:>8} {:>8} {:>7} {:>7} {:>7} {:>9}",
        "workload", "class", "periods", "sampled", "shrinks", "resets", "phases", "saturated"
    );
    for (hp, be) in PANEL {
        let hp_app = catalog.get(hp).unwrap().clone();
        let be_app = catalog.get(be).unwrap().clone();
        let server = Server::new(cfg, hp_app, vec![be_app; 9]);
        let mut session = Session::new(server, Dicer::new(DicerConfig::default()), 6000);
        let end = session.run();
        let periods = end.periods;
        let (_server, dicer) = session.into_parts();
        let st = dicer.stats;
        println!(
            "{:<28} {:>5} {:>8} {:>8} {:>7} {:>7} {:>7} {:>9}",
            format!("{hp}+9x{be}"),
            if dicer.ct_favoured() { "CT-F" } else { "CT-T" },
            periods,
            st.sampling_periods,
            st.shrinks,
            st.resets,
            st.phase_changes,
            st.saturated_periods
        );
        rows.push(Row {
            workload: format!("{hp}+{be}"),
            ct_favoured: dicer.ct_favoured(),
            final_hp_ways: dicer.hp_ways(),
            periods,
            sampling_periods: st.sampling_periods,
            shrinks: st.shrinks,
            resets: st.resets,
            phase_changes: st.phase_changes,
            saturated_periods: st.saturated_periods,
        });
    }
    dicer_bench::write_json("controller_dynamics", &rows).expect("write results");
}
