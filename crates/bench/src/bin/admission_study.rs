//! Future-work study (paper §6): dynamically managing the number of
//! co-located BEs. Compares the escalation ladder — DICER (cache only),
//! DICER+MBA (cache + bandwidth), DICER+ADM (cache + bandwidth +
//! admission) — on workloads whose BEs overwhelm every other actuator.

use dicer_experiments::runner::run_colocation_with;
use dicer_policy::{DicerConfig, PolicyKind};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    workload: String,
    policy: String,
    hp_norm: f64,
    be_norm: f64,
    efu: f64,
    link_gbps: f64,
}

fn main() {
    dicer_bench::banner("Future work: dynamic BE admission (paper section 6)");
    let (catalog, solo) = dicer_bench::setup();
    let cases = [
        ("omnetpp1", "lbm1"),        // sensitive HP vs unthrottleable streams
        ("mcf1", "libquantum1"),     // deep-working-set HP vs streams
        ("milc1", "lbm1"),           // bandwidth HP vs bandwidth BEs
    ];
    let ladder = [
        PolicyKind::Dicer(DicerConfig::default()),
        PolicyKind::DicerMba(DicerConfig::default()),
        PolicyKind::DicerAdmission(DicerConfig::default()),
    ];
    let mut rows = Vec::new();
    println!(
        "{:<22} {:<10} {:>8} {:>8} {:>7} {:>10}",
        "workload", "policy", "HP norm", "BE norm", "EFU", "link Gbps"
    );
    for (hp, be) in cases {
        let hp_app = catalog.get(hp).unwrap();
        let be_app = catalog.get(be).unwrap();
        for kind in &ladder {
            let out = run_colocation_with(&solo, hp_app, be_app, 10, kind);
            println!(
                "{:<22} {:<10} {:>8.3} {:>8.3} {:>7.3} {:>10.1}",
                format!("{hp}+9x{be}"),
                out.policy,
                out.hp_norm_ipc,
                out.be_norm_ipc_mean(),
                out.efu,
                out.mean_total_bw_gbps
            );
            rows.push(Row {
                workload: format!("{hp}+{be}"),
                policy: out.policy.clone(),
                hp_norm: out.hp_norm_ipc,
                be_norm: out.be_norm_ipc_mean(),
                efu: out.efu,
                link_gbps: out.mean_total_bw_gbps,
            });
        }
    }
    dicer_bench::write_json("admission_study", &rows).expect("write results");
    println!("\nEach rung of the ladder trades BE throughput for HP protection;");
    println!("admission is the last resort when cache and bandwidth control fail.");
}
