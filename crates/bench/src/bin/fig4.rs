//! Regenerates Figure 4: EFU vs HP slowdown scatter (UM and CT) over the
//! 120-workload sample.

use dicer_experiments::figures::fig4;

fn main() {
    dicer_bench::banner("Figure 4: EFU vs slowdown scatter (UM, CT)");
    let (catalog, solo) = dicer_bench::setup();
    let set = dicer_bench::load_or_classify(&catalog, &solo);
    let fig = fig4::run(&set);
    print!("{}", fig.render());
    let path = dicer_bench::write_json("fig4", &fig).expect("write results");
    println!("JSON: {}", path.display());
}
