//! `fleet_study` — the scheduler race behind `results/fleet_study.json`.
//!
//! Runs every [`SchedulerKind`] over the same five churn seeds on a
//! 32-node × 300-round standard-mix fleet and aggregates the per-seed
//! tail slowdowns into a winner table. The committed artifact is the
//! evidence for the fleet layer's headline claim, asserted here so it
//! cannot silently rot:
//!
//! > **sensitivity-aware packing beats round-robin on mean P99 HP
//! > slowdown** (mean over seeds; P99 of a 32-node fleet is the worst
//! > node, so a single seed is noisy but the mean is decisive).
//!
//! Everything is deterministic — fixed seeds, the seeded churn stream,
//! byte-stable outcomes at any `--jobs` — so regenerating the artifact
//! reproduces it byte-for-byte. JSON is hand-rolled (no serde backend
//! dependency).

use dicer_experiments::SweepRunner;
use dicer_fleet::{Fleet, FleetConfig, FleetOutcome, SchedulerKind};

/// Churn seeds the study averages over.
const SEEDS: [u64; 5] = [1, 2, 3, 4, 5];
/// Fleet size per run.
const NODES: usize = 32;
/// Rounds per run.
const ROUNDS: u32 = 300;

/// Per-scheduler aggregate over the seed set.
struct Aggregate {
    kind: SchedulerKind,
    runs: Vec<FleetOutcome>,
    mean_p50: f64,
    mean_p99: f64,
    total_migrations: u64,
    total_rejected: u64,
    be_retired_insns: f64,
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = values.collect();
    v.iter().sum::<f64>() / v.len() as f64
}

fn study(kind: SchedulerKind, runner: &SweepRunner) -> Aggregate {
    let runs: Vec<FleetOutcome> = SEEDS
        .iter()
        .map(|&seed| {
            let cfg = FleetConfig::standard(NODES, ROUNDS, seed);
            let scheduler = kind.build(
                cfg.seed,
                cfg.server.link.capacity_gbps,
                cfg.server.cache.ways,
                cfg.degraded_streak,
            );
            Fleet::new(cfg, scheduler).run(runner)
        })
        .collect();
    Aggregate {
        kind,
        mean_p50: mean(runs.iter().map(|r| r.hp_slowdown_p50)),
        mean_p99: mean(runs.iter().map(|r| r.hp_slowdown_p99)),
        total_migrations: runs.iter().map(|r| r.migrations).sum(),
        total_rejected: runs.iter().map(|r| r.rejected).sum(),
        be_retired_insns: runs.iter().map(|r| r.be_retired_insns).sum(),
        runs,
    }
}

fn main() {
    dicer_bench::banner("fleet_study: scheduler race, mean over seeds");
    println!(
        "   {NODES} nodes x {ROUNDS} rounds, seeds {SEEDS:?}, {} schedulers",
        SchedulerKind::ALL.len()
    );

    let runner = SweepRunner::auto();
    let aggregates: Vec<Aggregate> =
        SchedulerKind::ALL.iter().map(|&k| study(k, &runner)).collect();

    println!(
        "   {:<20} {:>9} {:>9} {:>12} {:>10} {:>9}",
        "scheduler", "mean P50", "mean P99", "BE Tinsns", "migrations", "rejected"
    );
    for a in &aggregates {
        println!(
            "   {:<20} {:>8.3}x {:>8.3}x {:>12.3} {:>10} {:>9}",
            a.kind.name(),
            a.mean_p50,
            a.mean_p99,
            a.be_retired_insns / 1e12,
            a.total_migrations,
            a.total_rejected
        );
    }

    let by_name = |name: &str| {
        aggregates
            .iter()
            .find(|a| a.kind.name() == name)
            .expect("scheduler in study")
    };
    let rr = by_name("round-robin");
    let pack = by_name("sensitivity-pack");
    let winner = aggregates
        .iter()
        .min_by(|a, b| a.mean_p99.total_cmp(&b.mean_p99))
        .expect("non-empty study");
    println!(
        "   winner on mean P99: {} ({:.3}x vs round-robin {:.3}x)",
        winner.kind.name(),
        winner.mean_p99,
        rr.mean_p99
    );

    // The headline claim, asserted so the committed artifact cannot say
    // one thing while a retune quietly made the other true.
    assert!(
        pack.mean_p99 < rr.mean_p99,
        "sensitivity-pack mean P99 ({:.4}) must beat round-robin ({:.4})",
        pack.mean_p99,
        rr.mean_p99
    );

    let mut json = String::with_capacity(4096);
    json.push_str("{\n");
    json.push_str(&format!("  \"nodes\": {NODES},\n  \"rounds\": {ROUNDS},\n"));
    json.push_str(&format!(
        "  \"seeds\": [{}],\n",
        SEEDS.map(|s| s.to_string()).join(", ")
    ));
    json.push_str(&format!(
        "  \"winner_mean_p99\": \"{}\",\n  \"schedulers\": [\n",
        winner.kind.name()
    ));
    for (i, a) in aggregates.iter().enumerate() {
        let comma = if i + 1 < aggregates.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\n      \"scheduler\": \"{}\",\n      \"mean_p50\": {},\n      \
             \"mean_p99\": {},\n      \"be_retired_insns\": {},\n      \
             \"migrations\": {},\n      \"rejected\": {},\n      \"per_seed\": [\n",
            a.kind.name(),
            a.mean_p50,
            a.mean_p99,
            a.be_retired_insns,
            a.total_migrations,
            a.total_rejected
        ));
        for (j, r) in a.runs.iter().enumerate() {
            let comma = if j + 1 < a.runs.len() { "," } else { "" };
            json.push_str(&format!(
                "        {{\"seed\": {}, \"p50\": {}, \"p99\": {}, \"migrations\": {}, \
                 \"rejected\": {}, \"worst_severity\": \"{}\"}}{comma}\n",
                r.seed,
                r.hp_slowdown_p50,
                r.hp_slowdown_p99,
                r.migrations,
                r.rejected,
                r.worst_severity.as_str()
            ));
        }
        json.push_str(&format!("      ]\n    }}{comma}\n"));
    }
    json.push_str("  ]\n}\n");

    let dir = std::path::Path::new(dicer_bench::RESULTS_DIR);
    std::fs::create_dir_all(dir).expect("results dir");
    let path = dir.join("fleet_study.json");
    std::fs::write(&path, json).expect("write fleet_study.json");
    println!("   wrote {}", path.display());
}
