//! Ablation: the memory-bandwidth saturation threshold (Table 1 fixes it at
//! 50 Gbps on a 68.3 Gbps link).

use dicer_experiments::ablation;
use dicer_policy::DicerConfig;

fn main() {
    dicer_bench::banner("Ablation: MemBW_threshold");
    let (catalog, solo) = dicer_bench::setup();
    let sweep = ablation::sweep_dicer_configs(
        &catalog,
        &solo,
        "MemBW_threshold",
        [40.0, 45.0, 50.0, 55.0, 60.0]
            .into_iter()
            .map(|g| {
                (format!("{g:.0} Gbps"), DicerConfig { mem_bw_threshold_gbps: g, ..Default::default() })
            })
            .collect(),
    );
    print!("{}", sweep.render());
    dicer_bench::write_json("ablate_saturation", &sweep).expect("write results");
}
