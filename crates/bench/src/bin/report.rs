//! Assembles `REPORT.md` — the full evaluation, every figure and study —
//! from the cached artifacts under `results/` (re-running anything that is
//! missing). One command regenerates the whole paper evaluation:
//!
//! ```text
//! cargo run --release -p dicer-bench --bin report
//! ```

use dicer_experiments::figures::{fig1, fig2, fig3, fig4, fig5, fig6, fig7, fig8, headline, table1};
use std::fmt::Write as _;

fn main() {
    dicer_bench::banner("Full evaluation report");
    let (catalog, solo) = dicer_bench::setup();
    let set = dicer_bench::load_or_classify(&catalog, &solo);
    let matrix = dicer_bench::load_or_matrix(&catalog, &solo, &set);

    let mut md = String::new();
    let _ = writeln!(md, "# DICER reproduction — generated evaluation report\n");
    let _ = writeln!(
        md,
        "Deterministic output of `cargo run --release -p dicer-bench --bin report`.\n\
         See `EXPERIMENTS.md` for the paper-vs-measured commentary.\n"
    );

    let mut section = |title: &str, body: String| {
        let _ = writeln!(md, "## {title}\n\n```text\n{}```\n", body);
    };

    section("Table 1", table1::run().render());
    let f1 = fig1::run(&set);
    section("Figure 1 — HP slowdown CDF (UM vs CT)", {
        let mut b = f1.render();
        let _ = writeln!(b, "CT-Thwarted fraction: {:.1}%", set.ct_thwarted_fraction() * 100.0);
        b
    });
    section("Figure 2 — minimum solo LLC allocation", fig2::run(&catalog, &solo).render());
    section("Figure 3 — static sweep (milc + 9x gcc)", fig3::run_default(&catalog, &solo).render());
    section("Figure 4 — EFU vs slowdown (UM, CT)", fig4::run(&set).render());
    let f5 = fig5::run(&matrix, solo.config().n_cores);
    // Fig. 5's per-workload block is long; keep the geomean summary only.
    let f5_summary: String =
        f5.render().lines().take(3).map(|l| format!("{l}\n")).collect();
    section("Figure 5 — per-class geomeans (UM/CT/DICER)", f5_summary);
    let f6 = fig6::run(&matrix);
    section("Figure 6 — geomean EFU vs cores", f6.render());
    let f7 = fig7::run(&matrix);
    section("Figure 7 — SLO conformance vs cores", f7.render());
    section("Figure 8 — geomean SUCI vs cores", fig8::run(&matrix).render());
    section(
        "Headline claims",
        headline::run(&f6, &f7, solo.config().n_cores).render(),
    );

    std::fs::write("REPORT.md", &md).expect("write REPORT.md");
    println!("wrote REPORT.md ({} bytes)", md.len());
}
