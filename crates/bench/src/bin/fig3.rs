//! Regenerates Figure 3: HP slowdown for every static LLC split,
//! milc (HP) + 9 gcc (BEs).

use dicer_experiments::figures::fig3;

fn main() {
    dicer_bench::banner("Figure 3: static partition sweep, milc + 9x gcc");
    let (catalog, solo) = dicer_bench::setup();
    let fig = fig3::run_default(&catalog, &solo);
    print!("{}", fig.render());
    let path = dicer_bench::write_json("fig3", &fig).expect("write results");
    println!("JSON: {}", path.display());
}
