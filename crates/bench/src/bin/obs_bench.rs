//! Observability-plane overhead benchmark: replays the two 10⁵-period
//! longrun scenarios through the daemon-grade telemetry pipeline (event
//! ring + metrics sink + wall-clock tracer — exactly what `dicerd` runs)
//! twice each — once as the baseline and once with the observability
//! plane attached (per-period store ingest, registry scrape, rule
//! evaluation) — and asserts the plane's cost against
//! [`OVERHEAD_BUDGET_PCT`].
//!
//! The two scenarios bracket the deployment space:
//!
//! * **churn** — multi-phase apps under the adaptive DICER controller:
//!   the workload consolidation the daemon exists to manage. The <3%
//!   budget is **asserted** here.
//! * **steady** — single-phase eternal apps, unmanaged: the
//!   fingerprint-accelerated fast path makes this the fastest baseline
//!   the stack can produce, so the plane's constant per-period cost is
//!   at its *relative* worst. Reported for scale, with a 2× budget
//!   backstop assert.
//!
//! Two properties are checked before anything is written:
//!
//! * **bit-identity** — the replay checksum with the plane attached
//!   equals the baseline's (observation never perturbs the simulation);
//! * **overhead** — best-segment periods/sec with the plane attached is
//!   within budget of the baseline.
//!
//! Results land in `results/BENCH_obs.json` (hand-rolled JSON so the
//! artifact is byte-stable); `scripts/ci.sh` (full tier) re-runs this
//! binary and gates on the committed baseline: a >15% regression of the
//! plane-attached periods/sec fails CI.

use dicer::daemon::MetricsSink;
use dicer_appmodel::{AppProfile, Archetype, MissCurve, Phase};
use dicer_experiments::{Session, SoloTable};
use dicer_obs::{ObsConfig, ObsPlane, ObsSink};
use dicer_policy::{DicerConfig, PolicyKind};
use dicer_server::{Server, ServerConfig};
use dicer_telemetry::{
    FanoutSink, MetricsRegistry, RingRecorder, Telemetry, TelemetrySink, Tracer,
};
use std::sync::Arc;
use std::time::Instant;

/// Control periods per replay.
const PERIODS: u32 = 100_000;
/// Timed repetitions per configuration; baseline and plane-attached
/// replays alternate, and the pair order flips every repeat, so both
/// sides sample the same thermal/frequency drift. The asserted overhead
/// is **best-segment on each side**: external interference on a shared
/// machine is additive noise, so the minimum is the closest observation
/// of each pipeline's true cost. The median of per-pair whole-replay
/// ratios is reported alongside as a drift cross-check.
const REPEATS: usize = 12;
/// Periods per timed segment: interference on a shared machine arrives
/// in bursts that poison whole replays, so each replay is timed in
/// [`SEGMENT`]-period slices and the best slice is the observation — a
/// quiet ~10 ms window is far more common than a quiet full replay.
const SEGMENT: u32 = 5_000;
/// Asserted ceiling on the plane's serving-throughput cost under the
/// managed (churn) longrun replay, percent.
const OVERHEAD_BUDGET_PCT: f64 = 3.0;
/// Backstop for the steady worst-case scenario (fastest baseline →
/// largest relative cost): 2× the managed budget.
const STEADY_BACKSTOP_PCT: f64 = 2.0 * OVERHEAD_BUDGET_PCT;
/// Ring capacity, as the daemon defaults it.
const RING_CAP: usize = 1024;

fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// One longrun scenario: workload + driving policy (mirrors
/// `longrun_bench`).
#[derive(Clone, Copy, PartialEq)]
enum Scenario {
    /// Multi-phase apps under the DICER controller — the managed
    /// consolidation the daemon serves; the budget is asserted here.
    Churn,
    /// Single-phase eternal apps, unmanaged — the fingerprint fast path
    /// floors the baseline period cost, maximizing relative overhead.
    Steady,
}

impl Scenario {
    fn name(self) -> &'static str {
        match self {
            Scenario::Churn => "churn",
            Scenario::Steady => "steady",
        }
    }

    fn policy(self) -> PolicyKind {
        match self {
            Scenario::Churn => PolicyKind::Dicer(DicerConfig::default()),
            Scenario::Steady => PolicyKind::Unmanaged,
        }
    }

    fn build_server(self) -> Server {
        // `u64::MAX / 2` instructions never finish within 10⁵ periods, so
        // eternal phases pin the session at the period cap.
        let eternal = || Phase {
            insns: u64::MAX / 2,
            base_cpi: 0.6,
            apki: 24.0,
            mlp: 2.4,
            curve: MissCurve::flat(0.35),
        };
        match self {
            Scenario::Steady => {
                let hp = AppProfile::new(
                    "obs_lr_hp",
                    Archetype::CacheFriendly,
                    vec![Phase {
                        insns: u64::MAX / 2,
                        base_cpi: 0.70,
                        apki: 28.0,
                        mlp: 4.0,
                        curve: MissCurve::parametric(0.45, 0.62, 1.3, 2.0),
                    }],
                );
                let be = AppProfile::new("obs_lr_be", Archetype::CacheFriendly, vec![eternal()]);
                Server::new(ServerConfig::table1(), hp, vec![be; 9])
            }
            Scenario::Churn => {
                let hp = AppProfile::new(
                    "obs_lr_hp_ph",
                    Archetype::CacheFriendly,
                    vec![
                        Phase {
                            insns: 6_000_000_000,
                            base_cpi: 0.70,
                            apki: 28.0,
                            mlp: 4.0,
                            curve: MissCurve::parametric(0.45, 0.62, 1.3, 2.0),
                        },
                        Phase {
                            insns: 4_000_000_000,
                            base_cpi: 0.55,
                            apki: 9.0,
                            mlp: 2.0,
                            curve: MissCurve::parametric(0.12, 0.5, 1.1, 2.5),
                        },
                    ],
                );
                let churny = AppProfile::new(
                    "obs_lr_be_ph",
                    Archetype::CacheFriendly,
                    vec![
                        Phase {
                            insns: 5_000_000_000,
                            base_cpi: 0.65,
                            apki: 24.0,
                            mlp: 2.4,
                            curve: MissCurve::flat(0.55),
                        },
                        Phase {
                            insns: 3_000_000_000,
                            base_cpi: 0.5,
                            apki: 6.0,
                            mlp: 1.8,
                            curve: MissCurve::flat(0.10),
                        },
                    ],
                );
                let anchor =
                    AppProfile::new("obs_lr_anchor", Archetype::CacheFriendly, vec![eternal()]);
                let mut bes = vec![churny; 8];
                bes.push(anchor);
                Server::new(ServerConfig::table1(), hp, bes)
            }
        }
    }

    fn hp_solo_ipc(self) -> f64 {
        let profile = self.build_server().hp().profile.clone();
        let solo = SoloTable::build_from_profiles([&profile], ServerConfig::table1());
        solo.get(&profile.name).ipc_alone
    }
}

/// One telemetry pipeline configuration to measure.
struct Pipeline {
    telemetry: Telemetry,
    tracer: Tracer,
    /// Kept alive (and inspected) across the replay.
    plane: Option<Arc<ObsPlane>>,
}

/// The daemon-grade serving pipeline: ring + metrics sink + wall-clock
/// tracer, optionally with the observability plane on the bus.
fn daemon_pipeline(with_obs: bool, hp_solo_ipc: f64) -> Pipeline {
    let cfg = ServerConfig::table1();
    let registry = Arc::new(MetricsRegistry::new());
    let ring = Arc::new(RingRecorder::new(RING_CAP));
    let metrics = Arc::new(MetricsSink::new(registry.clone(), hp_solo_ipc, cfg.link.capacity_gbps));
    let mut sinks: Vec<Arc<dyn TelemetrySink>> = vec![ring.clone(), metrics];
    let plane = with_obs.then(|| {
        let plane = Arc::new(ObsPlane::new(ObsConfig {
            hp_solo_ipc: Some(hp_solo_ipc),
            ..Default::default()
        }));
        plane.attach_registry(&registry);
        plane.attach_ring(ring.clone());
        sinks.push(Arc::new(ObsSink::new(plane.clone())));
        plane
    });
    let telemetry = Telemetry::new(Arc::new(FanoutSink::new(sinks)));
    let tracer = Tracer::with_wall_clock(telemetry.clone());
    Pipeline { telemetry, tracer, plane }
}

/// Replays `sc` once through `pipeline` (or fully detached) and returns
/// (whole-replay seconds, best segment seconds, checksum).
fn replay(sc: Scenario, pipeline: Option<&Pipeline>) -> (f64, f64, u64) {
    let server = sc.build_server();
    let mut session = Session::new(server, sc.policy().build(), PERIODS);
    if let Some(p) = pipeline {
        session = session.with_telemetry(&p.telemetry).with_tracing(&p.tracer);
    }
    let mut checksum = FNV_OFFSET;
    let mut periods_seen: u32 = 0;
    let mut next_segment = SEGMENT;
    let mut best_segment = f64::INFINITY;
    let t0 = Instant::now();
    let mut seg_start = t0;
    let end = session.run_observed(
        |_, _| (),
        |step, _, _| {
            if let Some(s) = step.delivered {
                checksum = fnv1a(checksum, &s.time_s.to_bits().to_le_bytes());
                checksum = fnv1a(checksum, &s.hp.ipc.to_bits().to_le_bytes());
                checksum = fnv1a(checksum, &s.total_bw_gbps.to_bits().to_le_bytes());
            }
            periods_seen += 1;
            if periods_seen == next_segment {
                next_segment += SEGMENT;
                let now = Instant::now();
                best_segment = best_segment.min((now - seg_start).as_secs_f64());
                seg_start = now;
            }
        },
    );
    let seconds = t0.elapsed().as_secs_f64();
    assert_eq!(end.periods, PERIODS, "the eternal workload must reach the cap");
    (seconds, best_segment, checksum)
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    xs[xs.len() / 2]
}

/// Everything measured for one scenario.
struct Measured {
    detached_pps: f64,
    baseline_pps: f64,
    obs_pps: f64,
    overhead_pct: f64,
    median_pair_pct: f64,
    checksum: u64,
    plane: Arc<ObsPlane>,
}

/// Paired interleaved measurement: [`REPEATS`] (baseline, obs) pairs,
/// order flipped every repeat, checksum checked every replay against the
/// detached reference.
fn measure(sc: Scenario) -> Measured {
    let hp_solo_ipc = sc.hp_solo_ipc();
    let (_, detached_best, checksum) = replay(sc, None);
    let detached_pps = SEGMENT as f64 / detached_best;

    let mut base_s = Vec::with_capacity(REPEATS);
    let mut obs_s = Vec::with_capacity(REPEATS);
    let (mut best_base, mut best_obs) = (f64::INFINITY, f64::INFINITY);
    let mut obs_last = None;
    for rep in 0..REPEATS {
        for flip in [false, true] {
            let with_obs = flip ^ (rep % 2 == 1);
            let pipeline = daemon_pipeline(with_obs, hp_solo_ipc);
            let (seconds, best_segment, sum) = replay(sc, Some(&pipeline));
            assert_eq!(sum, checksum, "telemetry observation perturbed the simulation");
            if with_obs {
                obs_s.push(seconds);
                best_obs = best_obs.min(best_segment);
                obs_last = Some(pipeline);
            } else {
                base_s.push(seconds);
                best_base = best_base.min(best_segment);
            }
        }
    }
    let mut ratios: Vec<f64> =
        base_s.iter().zip(&obs_s).map(|(b, o)| (o - b) / o * 100.0).collect();
    Measured {
        detached_pps,
        baseline_pps: SEGMENT as f64 / best_base,
        obs_pps: SEGMENT as f64 / best_obs,
        overhead_pct: (best_obs - best_base) / best_obs * 100.0,
        median_pair_pct: median(&mut ratios),
        checksum,
        plane: obs_last.and_then(|p| p.plane).expect("obs pipeline kept"),
    }
}

fn main() {
    dicer_bench::banner("observability-plane overhead (daemon pipeline, 10^5-period replays)");
    println!(
        "{PERIODS} periods per replay, best {SEGMENT}-period segment over {REPEATS} \
         interleaved pairs; budget {OVERHEAD_BUDGET_PCT}% (churn, asserted), \
         {STEADY_BACKSTOP_PCT}% (steady backstop), over the ring+metrics+tracer baseline"
    );

    let mut blocks = Vec::new();
    for sc in [Scenario::Churn, Scenario::Steady] {
        let m = measure(sc);
        println!(
            "{:>7}: detached {:>9.0}/s | baseline {:>8.0}/s | with obs {:>8.0}/s \
             -> overhead {:.2}% (median pair {:.2}%)",
            sc.name(),
            m.detached_pps,
            m.baseline_pps,
            m.obs_pps,
            m.overhead_pct,
            m.median_pair_pct,
        );
        println!(
            "         plane: {} samples across {} series, {} alerts firing",
            m.plane.samples_total(),
            m.plane.series_names().len(),
            m.plane.firing_count(),
        );
        let budget = match sc {
            Scenario::Churn => OVERHEAD_BUDGET_PCT,
            Scenario::Steady => STEADY_BACKSTOP_PCT,
        };
        assert!(
            m.overhead_pct < budget,
            "observability plane costs {:.2}% of {} serving throughput (budget {budget}%)",
            m.overhead_pct,
            sc.name(),
        );
        blocks.push(format!(
            "    {{\n      \"name\": \"{}\",\n      \"policy\": \"{}\",\n      \
             \"asserted_budget_pct\": {budget:.1},\n      \
             \"baseline_periods_per_sec\": {:.0},\n      \
             \"obs_periods_per_sec\": {:.0},\n      \
             \"overhead_pct\": {:.3},\n      \
             \"overhead_median_pair_pct\": {:.3},\n      \
             \"detached_periods_per_sec\": {:.0},\n      \
             \"store_samples\": {},\n      \"store_series\": {},\n      \
             \"alerts_firing\": {},\n      \"checksum\": \"{:016x}\"\n    }}",
            sc.name(),
            match sc {
                Scenario::Churn => "DICER",
                Scenario::Steady => "UM",
            },
            m.baseline_pps,
            m.obs_pps,
            m.overhead_pct,
            m.median_pair_pct,
            m.detached_pps,
            m.plane.samples_total(),
            m.plane.series_names().len(),
            m.plane.firing_count(),
            m.checksum,
        ));
    }

    // Hand-rolled JSON: byte-stable, no serialiser in the loop.
    let json = format!(
        "{{\n  \"periods\": {PERIODS},\n  \"repeats\": {REPEATS},\n  \
         \"segment\": {SEGMENT},\n  \
         \"overhead_budget_pct\": {OVERHEAD_BUDGET_PCT:.1},\n  \
         \"scenarios\": [\n{}\n  ]\n}}\n",
        blocks.join(",\n"),
    );
    std::fs::create_dir_all(dicer_bench::RESULTS_DIR).expect("results dir");
    let path = std::path::Path::new(dicer_bench::RESULTS_DIR).join("BENCH_obs.json");
    std::fs::write(&path, json).expect("write bench json");
    println!("wrote {}", path.display());
}
