//! Long-horizon hot-path benchmark: replays a churnless and a churning
//! consolidation scenario for 10⁵ control periods each, once on the
//! incremental (fingerprint + memo) path and once on the cold
//! (every-sub-period re-solve) path, and writes
//! `results/BENCH_longrun.json` with periods/sec, solver fast-path rates,
//! and per-period heap allocations measured by a counting global
//! allocator.
//!
//! Three properties are asserted before anything is written:
//!
//! * **bit-identity** — the incremental and cold replays of a scenario
//!   produce the same FNV-1a checksum over every period sample's exact
//!   bits (the skip-vs-solve equivalence contract, proved again at bench
//!   scale);
//! * **speedup** — the churnless replay is at least [`SPEEDUP_FLOOR`]×
//!   faster on the incremental path, measured in the same run;
//! * **zero allocation** — after a warm-up prefix, the churnless replay
//!   with no telemetry sink attached performs exactly zero heap
//!   allocations per period.
//!
//! `scripts/ci.sh` (full tier) re-runs this binary and gates on the
//! committed baseline: a >15% regression of either scenario's
//! incremental periods/sec fails CI.

use dicer_appmodel::{AppProfile, Archetype, MissCurve, Phase};
use dicer_experiments::Session;
use dicer_policy::{DicerConfig, PolicyKind};
use dicer_server::{Server, ServerConfig, SolverStats};
use dicer_telemetry::{BufferedSink, CollectingSink, Telemetry};
use serde::Serialize;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Control periods replayed per scenario per mode.
const PERIODS: u32 = 100_000;
/// Periods excluded from the allocation count (first fills of the memo,
/// the fingerprint, the sample buffer and the solver scratch).
const ALLOC_WARMUP: u32 = 1_000;
/// Timed repetitions per mode; the best (fastest) one is reported.
const REPEATS: usize = 2;
/// Asserted minimum incremental-vs-cold speedup on the churnless replay.
const SPEEDUP_FLOOR: f64 = 5.0;
/// Events buffered per downstream flush in the sink-attached measurement.
const SINK_BATCH: usize = 1024;

/// Counts every allocation (alloc, realloc, alloc_zeroed) and forwards to
/// the system allocator. Deallocations are not counted: the criterion is
/// "the hot loop takes nothing from the heap", and every grab goes
/// through one of the counted entry points.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// FNV-1a over a byte slice, seeded with a running hash.
fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// One bench scenario: how to build the server and which policy drives it.
struct Scenario {
    name: &'static str,
    policy: PolicyKind,
}

impl Scenario {
    /// Churnless: single-phase apps that never complete under a static
    /// plan — after the first sub-period every equilibrium input repeats,
    /// so the fingerprint should skip essentially every solve.
    fn steady() -> Self {
        Scenario { name: "steady", policy: PolicyKind::Unmanaged }
    }

    /// Churning: multi-phase apps crossing phase boundaries mid-period
    /// under the adaptive DICER controller, so plans, throttles and phase
    /// vectors keep shifting and the fingerprint must keep re-solving.
    fn churn() -> Self {
        Scenario { name: "churn", policy: PolicyKind::Dicer(DicerConfig::default()) }
    }

    fn build_server(&self) -> Server {
        // One BE runs a single eternal phase so the workload never
        // reports completion and the session always reaches the period
        // cap; `u64::MAX / 2` instructions never finish at any modelled
        // IPC within 10⁵ one-second periods.
        let eternal = || Phase {
            insns: u64::MAX / 2,
            base_cpi: 0.6,
            apki: 24.0,
            mlp: 2.4,
            curve: MissCurve::flat(0.35),
        };
        match self.name {
            "steady" => {
                let hp = AppProfile::new(
                    "lr_hp",
                    Archetype::CacheFriendly,
                    vec![Phase {
                        insns: u64::MAX / 2,
                        base_cpi: 0.70,
                        apki: 28.0,
                        mlp: 4.0,
                        curve: MissCurve::parametric(0.45, 0.62, 1.3, 2.0),
                    }],
                );
                let be = AppProfile::new("lr_be", Archetype::CacheFriendly, vec![eternal()]);
                Server::new(ServerConfig::table1(), hp, vec![be; 9])
            }
            _ => {
                let hp = AppProfile::new(
                    "lr_hp_ph",
                    Archetype::CacheFriendly,
                    vec![
                        Phase {
                            insns: 6_000_000_000,
                            base_cpi: 0.70,
                            apki: 28.0,
                            mlp: 4.0,
                            curve: MissCurve::parametric(0.45, 0.62, 1.3, 2.0),
                        },
                        Phase {
                            insns: 4_000_000_000,
                            base_cpi: 0.55,
                            apki: 9.0,
                            mlp: 2.0,
                            curve: MissCurve::parametric(0.12, 0.5, 1.1, 2.5),
                        },
                    ],
                );
                let churny = AppProfile::new(
                    "lr_be_ph",
                    Archetype::CacheFriendly,
                    vec![
                        Phase {
                            insns: 5_000_000_000,
                            base_cpi: 0.65,
                            apki: 24.0,
                            mlp: 2.4,
                            curve: MissCurve::flat(0.55),
                        },
                        Phase {
                            insns: 3_000_000_000,
                            base_cpi: 0.5,
                            apki: 6.0,
                            mlp: 1.8,
                            curve: MissCurve::flat(0.10),
                        },
                    ],
                );
                let anchor = AppProfile::new("lr_anchor", Archetype::CacheFriendly, vec![eternal()]);
                let mut bes = vec![churny; 8];
                bes.push(anchor);
                Server::new(ServerConfig::table1(), hp, bes)
            }
        }
    }
}

/// Outcome of one full replay.
struct RunOut {
    seconds: f64,
    checksum: u64,
    stats: SolverStats,
}

/// Replays `periods` control periods and checksums every sample bit.
fn replay(sc: &Scenario, accelerated: bool, periods: u32, telemetry: Option<&Telemetry>) -> RunOut {
    let mut server = sc.build_server();
    server.set_acceleration(accelerated);
    let mut session = Session::new(server, sc.policy.build(), periods);
    if let Some(bus) = telemetry {
        session = session.with_telemetry(bus);
    }
    let mut checksum = FNV_OFFSET;
    let t0 = Instant::now();
    let end = session.run_observed(
        |_, _| (),
        |step, _, _| {
            if let Some(s) = step.delivered {
                checksum = fnv1a(checksum, &s.time_s.to_bits().to_le_bytes());
                checksum = fnv1a(checksum, &s.hp.ipc.to_bits().to_le_bytes());
                checksum = fnv1a(checksum, &s.hp.mem_bw_gbps.to_bits().to_le_bytes());
                checksum = fnv1a(checksum, &s.hp.miss_ratio.to_bits().to_le_bytes());
                checksum = fnv1a(checksum, &s.hp.llc_occupancy_bytes.to_le_bytes());
                for be in &s.bes {
                    checksum = fnv1a(checksum, &be.ipc.to_bits().to_le_bytes());
                    checksum = fnv1a(checksum, &be.mem_bw_gbps.to_bits().to_le_bytes());
                }
                checksum = fnv1a(checksum, &s.total_bw_gbps.to_bits().to_le_bytes());
            }
        },
    );
    let seconds = t0.elapsed().as_secs_f64();
    assert_eq!(end.periods, periods, "the workload must never complete early");
    RunOut { seconds, checksum, stats: session.platform().solver_stats() }
}

/// Counts heap allocations over the post-warm-up stretch of a detached
/// (no sink, no tracer) incremental replay.
fn count_allocs(sc: &Scenario, periods: u32, warmup: u32) -> (u64, u32) {
    let server = sc.build_server();
    let mut session = Session::new(server, sc.policy.build(), periods);
    let mut base = 0u64;
    session.run_observed(
        |p, _| {
            if p == warmup {
                base = ALLOCATIONS.load(Ordering::Relaxed);
            }
        },
        |_, _, _| (),
    );
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    (after - base, periods - warmup)
}

#[derive(Serialize)]
struct ScenarioBench {
    name: &'static str,
    policy: &'static str,
    periods: u32,
    /// Periods per second on the incremental (fingerprint) path, best-of.
    incremental_periods_per_sec: f64,
    /// Periods per second with acceleration disabled, best-of.
    cold_periods_per_sec: f64,
    speedup: f64,
    /// Fraction of solve requests skipped by the input fingerprint.
    fingerprint_skip_rate: f64,
    /// Fraction answered from the equilibrium memo.
    cache_hit_rate: f64,
    /// Fraction that never touched the root finder at all.
    fast_path_rate: f64,
    /// Full counter set of the incremental replay.
    solver: SolverStats,
    /// FNV-1a checksum over every period sample's bits — equal between
    /// the incremental and cold replays by assertion.
    checksum: String,
}

#[derive(Serialize)]
struct LongrunBench {
    periods: u32,
    repeats: usize,
    speedup_floor: f64,
    scenarios: Vec<ScenarioBench>,
    /// Heap allocations per period on the churnless replay after warm-up,
    /// sinks detached — asserted to be exactly zero.
    allocs_per_period_detached: f64,
    alloc_warmup_periods: u32,
    alloc_measured_periods: u32,
    /// Periods per second on the churnless replay with a live sink behind
    /// a [`BufferedSink`] batching layer (informational).
    sink_attached_periods_per_sec: f64,
    sink_batch: usize,
}

fn main() {
    dicer_bench::banner("long-horizon hot path (incremental vs cold, 10^5-period replays)");
    println!(
        "{PERIODS} periods per replay, best of {REPEATS}, speedup floor {SPEEDUP_FLOOR}x (steady)"
    );

    let mut scenarios = Vec::new();
    for sc in [Scenario::steady(), Scenario::churn()] {
        // Correctness first: one replay per mode, checksums must agree.
        let fast = replay(&sc, true, PERIODS, None);
        let cold = replay(&sc, false, PERIODS, None);
        assert_eq!(
            fast.checksum, cold.checksum,
            "scenario {}: incremental and cold replays diverged",
            sc.name
        );

        // Then speed: alternate modes so a transient stall cannot charge
        // one side unfairly.
        let (mut fast_s, mut cold_s) = (fast.seconds, cold.seconds);
        for _ in 0..REPEATS.saturating_sub(1) {
            fast_s = fast_s.min(replay(&sc, true, PERIODS, None).seconds);
            cold_s = cold_s.min(replay(&sc, false, PERIODS, None).seconds);
        }
        let incremental_pps = PERIODS as f64 / fast_s;
        let cold_pps = PERIODS as f64 / cold_s;
        let speedup = incremental_pps / cold_pps;
        let stats = fast.stats;
        println!(
            "{:>6}: incremental {:>10.0}/s, cold {:>10.0}/s -> {:>5.1}x  \
             (skip rate {:.4}, memo hit rate {:.4})",
            sc.name,
            incremental_pps,
            cold_pps,
            speedup,
            stats.fingerprint_skips as f64 / stats.solves.max(1) as f64,
            stats.cache_hit_rate(),
        );
        scenarios.push(ScenarioBench {
            name: sc.name,
            policy: sc.policy.name(),
            periods: PERIODS,
            incremental_periods_per_sec: incremental_pps,
            cold_periods_per_sec: cold_pps,
            speedup,
            fingerprint_skip_rate: stats.fingerprint_skips as f64 / stats.solves.max(1) as f64,
            cache_hit_rate: stats.cache_hit_rate(),
            fast_path_rate: stats.fast_path_rate(),
            solver: stats,
            checksum: format!("{:016x}", fast.checksum),
        });
    }

    // Zero-allocation criterion: churnless, incremental, sinks detached.
    let steady = Scenario::steady();
    let (allocs, measured) = count_allocs(&steady, PERIODS, ALLOC_WARMUP);
    let allocs_per_period = allocs as f64 / measured as f64;
    println!(
        "allocations after {ALLOC_WARMUP}-period warm-up: {allocs} over {measured} periods \
         ({allocs_per_period:.6}/period)"
    );
    assert_eq!(allocs, 0, "the detached steady-state hot loop must not allocate");

    // Informational: the same replay with a live sink behind batching.
    let collector = Arc::new(CollectingSink::new());
    let buffered = Arc::new(BufferedSink::new(collector, SINK_BATCH));
    let bus = Telemetry::new(buffered);
    let attached = replay(&steady, true, PERIODS, Some(&bus));
    let sink_pps = PERIODS as f64 / attached.seconds;
    println!("sink-attached (batch {SINK_BATCH}): {sink_pps:.0} periods/s");

    let steady_speedup = scenarios[0].speedup;
    assert!(
        steady_speedup >= SPEEDUP_FLOOR,
        "steady-state speedup {steady_speedup:.2}x is below the {SPEEDUP_FLOOR}x floor"
    );

    let bench = LongrunBench {
        periods: PERIODS,
        repeats: REPEATS,
        speedup_floor: SPEEDUP_FLOOR,
        scenarios,
        allocs_per_period_detached: allocs_per_period,
        alloc_warmup_periods: ALLOC_WARMUP,
        alloc_measured_periods: measured,
        sink_attached_periods_per_sec: sink_pps,
        sink_batch: SINK_BATCH,
    };
    let path = dicer_bench::write_json("BENCH_longrun", &bench).expect("write bench json");
    println!("wrote {}", path.display());
}
