//! Future-work study (paper §6): can *overlapping* cache partitions benefit
//! some workloads? Sweeps overlap geometries against the best isolated
//! split on three contrasting workloads.

use dicer_experiments::runner::run_colocation_with;
use dicer_policy::PolicyKind;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    workload: String,
    plan: String,
    hp_norm: f64,
    be_norm: f64,
    efu: f64,
}

fn main() {
    dicer_bench::banner("Future work: overlapping partitions (paper section 6)");
    let (catalog, solo) = dicer_bench::setup();
    let cases = [("omnetpp1", "gcc_base1"), ("milc1", "gcc_base1"), ("mcf1", "gobmk1")];
    let mut rows = Vec::new();

    println!(
        "{:<24} {:<18} {:>8} {:>8} {:>7}",
        "workload", "plan", "HP norm", "BE norm", "EFU"
    );
    for (hp, be) in cases {
        let hp_app = catalog.get(hp).unwrap();
        let be_app = catalog.get(be).unwrap();
        let mut plans: Vec<(String, PolicyKind)> = vec![
            ("UM".into(), PolicyKind::Unmanaged),
            ("split 10+10".into(), PolicyKind::Static(10)),
        ];
        for (e, s) in [(4u32, 6u32), (4, 12), (8, 6), (12, 4), (2, 16)] {
            plans.push((format!("overlap {e}+{s}sh"), PolicyKind::Overlap(e, s)));
        }
        for (label, kind) in plans {
            let out = run_colocation_with(&solo, hp_app, be_app, 10, &kind);
            println!(
                "{:<24} {:<18} {:>8.3} {:>8.3} {:>7.3}",
                format!("{hp}+9x{be}"),
                label,
                out.hp_norm_ipc,
                out.be_norm_ipc_mean(),
                out.efu
            );
            rows.push(Row {
                workload: format!("{hp}+{be}"),
                plan: label,
                hp_norm: out.hp_norm_ipc,
                be_norm: out.be_norm_ipc_mean(),
                efu: out.efu,
            });
        }
    }
    dicer_bench::write_json("overlap_study", &rows).expect("write results");
    println!("\nOverlap lets a satisfied HP lend its slack to the BEs without");
    println!("giving up the ways outright — at the cost of weaker isolation.");
}
