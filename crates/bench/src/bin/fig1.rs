//! Regenerates Figure 1: CDF of HP slowdown under UM and CT, 9 BEs,
//! over the full 59 x 59 workload space.

use dicer_experiments::figures::fig1;

fn main() {
    dicer_bench::banner("Figure 1: HP slowdown CDF (UM vs CT)");
    let (catalog, solo) = dicer_bench::setup();
    let set = dicer_bench::load_or_classify(&catalog, &solo);
    let fig = fig1::run(&set);
    print!("{}", fig.render());
    println!("CT-Thwarted fraction: {:.1}% (paper: ~60%)", set.ct_thwarted_fraction() * 100.0);
    let path = dicer_bench::write_json("fig1", &fig).expect("write results");
    println!("JSON: {}", path.display());
}
