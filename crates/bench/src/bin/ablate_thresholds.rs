//! Ablation: DICER's phase-detection threshold (Eq. 2) and IPC stability
//! band `a` (Eq. 3).

use dicer_experiments::ablation;
use dicer_policy::DicerConfig;

fn main() {
    dicer_bench::banner("Ablation: phase threshold and stability band");
    let (catalog, solo) = dicer_bench::setup();

    let phase = ablation::sweep_dicer_configs(
        &catalog,
        &solo,
        "phase_threshold (Eq. 2)",
        [0.10, 0.20, 0.30, 0.50]
            .into_iter()
            .map(|t| {
                (format!("phase={:.0}%", t * 100.0), DicerConfig { phase_threshold: t, ..Default::default() })
            })
            .collect(),
    );
    print!("{}", phase.render());
    dicer_bench::write_json("ablate_phase_threshold", &phase).expect("write results");

    let alpha = ablation::sweep_dicer_configs(
        &catalog,
        &solo,
        "stability band a (Eq. 3)",
        [0.01, 0.03, 0.05, 0.10]
            .into_iter()
            .map(|a| {
                (format!("a={:.0}%", a * 100.0), DicerConfig { stability_alpha: a, ..Default::default() })
            })
            .collect(),
    );
    print!("{}", alpha.render());
    dicer_bench::write_json("ablate_stability_alpha", &alpha).expect("write results");
}
