//! Regenerates Figure 5: normalised HP and BE IPC per workload under
//! UM / CT / DICER, split by CT-F / CT-T class, at full occupancy.

use dicer_experiments::figures::fig5;

fn main() {
    dicer_bench::banner("Figure 5: per-workload HP/BE normalised IPC");
    let (catalog, solo) = dicer_bench::setup();
    let set = dicer_bench::load_or_classify(&catalog, &solo);
    let matrix = dicer_bench::load_or_matrix(&catalog, &solo, &set);
    let fig = fig5::run(&matrix, solo.config().n_cores);
    print!("{}", fig.render());
    let path = dicer_bench::write_json("fig5", &fig).expect("write results");
    println!("JSON: {}", path.display());
}
