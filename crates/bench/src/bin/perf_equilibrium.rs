//! Perf tracking for the equilibrium solve engine: times a fixed
//! classification slice (5 × 5 HP/BE pairs under UM and CT, run to
//! completion) and writes `results/BENCH_equilibrium.json` — solves/sec,
//! mean curve-evaluation rounds per solve, cache-hit rate — so the perf
//! trajectory is visible across PRs.

use dicer_appmodel::Catalog;
use dicer_bench::{banner, write_json};
use dicer_experiments::runner::run_colocation_with;
use dicer_experiments::SoloTable;
use dicer_policy::PolicyKind;
use dicer_server::{ServerConfig, SolverStats};
use serde::Serialize;
use std::time::Instant;

/// The fixed slice: a bandwidth-sensitive HP, a hungry BE, a
/// cache-sensitive HP, a streaming hog, and a compute-bound app.
const NAMES: [&str; 5] = ["milc1", "gcc_base1", "omnetpp1", "lbm1", "namd1"];

#[derive(Debug, Serialize)]
struct Report {
    wall_s: f64,
    runs: u64,
    solves: u64,
    curve_evals: u64,
    solves_per_sec: f64,
    cache_hit_rate: f64,
    mean_evals_per_solve: f64,
    mean_evals_per_computed_solve: f64,
}

fn main() {
    banner("equilibrium engine perf (fixed 5x5 classification slice)");
    let catalog = Catalog::paper();
    let cfg = ServerConfig::table1();
    let profiles: Vec<_> = NAMES.iter().map(|n| catalog.get(n).expect("catalog name")).collect();
    let solo = SoloTable::build_from_profiles(profiles.iter().copied(), cfg);

    let mut stats = SolverStats::default();
    let mut runs = 0u64;
    let start = Instant::now();
    for &hp in &profiles {
        for &be in &profiles {
            for policy in [PolicyKind::Unmanaged, PolicyKind::CacheTakeover] {
                let out = run_colocation_with(&solo, hp, be, cfg.n_cores, &policy);
                stats.merge(&out.solver_stats);
                runs += 1;
            }
        }
    }
    let wall_s = start.elapsed().as_secs_f64();

    let report = Report {
        wall_s,
        runs,
        solves: stats.solves,
        curve_evals: stats.curve_evals,
        solves_per_sec: stats.solves as f64 / wall_s,
        cache_hit_rate: stats.cache_hit_rate(),
        mean_evals_per_solve: stats.mean_evals_per_solve(),
        mean_evals_per_computed_solve: stats.mean_evals_per_computed_solve(),
    };
    println!(
        "{} runs in {:.2} s  |  {:.0} solves/s  |  hit rate {:.1}%  |  {:.2} rounds/solve",
        report.runs,
        report.wall_s,
        report.solves_per_sec,
        100.0 * report.cache_hit_rate,
        report.mean_evals_per_solve
    );
    match write_json("BENCH_equilibrium", &report) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write artifact: {e}"),
    }
}
