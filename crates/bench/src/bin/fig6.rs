//! Regenerates Figure 6: geomean effective utilisation vs employed cores.

use dicer_experiments::figures::fig6;

fn main() {
    dicer_bench::banner("Figure 6: geomean EFU vs cores");
    let (catalog, solo) = dicer_bench::setup();
    let set = dicer_bench::load_or_classify(&catalog, &solo);
    let matrix = dicer_bench::load_or_matrix(&catalog, &solo, &set);
    let fig = fig6::run(&matrix);
    print!("{}", fig.render());
    let path = dicer_bench::write_json("fig6", &fig).expect("write results");
    println!("JSON: {}", path.display());
}
