//! Shared plumbing for the figure-regeneration binaries and benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fs;
use std::path::PathBuf;

/// Directory (under the invoking directory) where figure binaries drop
/// their machine-readable JSON artifacts.
pub const RESULTS_DIR: &str = "results";

/// Writes a serialisable result next to the printed table, returning the
/// path written.
pub fn write_json<T: serde::Serialize>(name: &str, value: &T) -> std::io::Result<PathBuf> {
    let dir = PathBuf::from(RESULTS_DIR);
    fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    fs::write(&path, serde_json::to_string_pretty(value).expect("serialisable result"))?;
    Ok(path)
}

/// Standard banner for figure binaries.
pub fn banner(what: &str) {
    println!("== DICER reproduction :: {what} ==");
    println!("   (deterministic: fixed seeds, no wall-clock input)");
}

use dicer_appmodel::Catalog;
use dicer_experiments::figures::{policies3, EvalMatrix};
use dicer_experiments::{SoloTable, WorkloadSet};
use dicer_server::ServerConfig;

/// Builds the standard catalog + solo-table pair (Table 1 server).
pub fn setup() -> (Catalog, SoloTable) {
    let catalog = Catalog::paper();
    let solo = SoloTable::build(&catalog, ServerConfig::table1());
    (catalog, solo)
}

/// Classifies the full 59 × 59 workload space, reusing a cached
/// `results/classification.json` when one exists (the classification runs
/// 2 × 3481 co-location experiments — a couple of minutes on first run).
pub fn load_or_classify(catalog: &Catalog, solo: &SoloTable) -> WorkloadSet {
    let path = PathBuf::from(RESULTS_DIR).join("classification.json");
    if let Ok(text) = fs::read_to_string(&path) {
        if let Ok(set) = serde_json::from_str::<WorkloadSet>(&text) {
            if set.all.len() == catalog.len() * catalog.len() {
                eprintln!("[bench] reusing cached classification ({})", path.display());
                return set;
            }
        }
    }
    eprintln!("[bench] classifying {n} x {n} workloads ...", n = catalog.len());
    let set = WorkloadSet::classify(catalog, solo);
    let _ = write_json("classification", &set);
    set
}

/// Runs (or reloads) the policy × cores × 120-workload evaluation matrix
/// shared by Figs. 5–8.
pub fn load_or_matrix(catalog: &Catalog, solo: &SoloTable, set: &WorkloadSet) -> EvalMatrix {
    let path = PathBuf::from(RESULTS_DIR).join("matrix.json");
    let cores: Vec<u32> = (2..=solo.config().n_cores).collect();
    let sample = set.sample_120();
    let expected = sample.len() * cores.len() * 3;
    if let Ok(text) = fs::read_to_string(&path) {
        if let Ok(m) = serde_json::from_str::<EvalMatrix>(&text) {
            if m.cells.len() == expected {
                eprintln!("[bench] reusing cached matrix ({})", path.display());
                return m;
            }
        }
    }
    eprintln!(
        "[bench] running evaluation matrix: {} workloads x {} core counts x 3 policies ...",
        sample.len(),
        cores.len()
    );
    let m = EvalMatrix::run(catalog, solo, &sample, &cores, &policies3());
    let _ = write_json("matrix", &m);
    m
}
