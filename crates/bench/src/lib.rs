//! Shared plumbing for the figure-regeneration binaries and benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fs;
use std::path::{Path, PathBuf};

/// Directory (under the invoking directory) where figure binaries drop
/// their machine-readable JSON artifacts.
pub const RESULTS_DIR: &str = "results";

/// Writes a serialisable result next to the printed table, returning the
/// path written.
pub fn write_json<T: serde::Serialize>(name: &str, value: &T) -> std::io::Result<PathBuf> {
    let dir = PathBuf::from(RESULTS_DIR);
    fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    fs::write(&path, serde_json::to_string_pretty(value).expect("serialisable result"))?;
    Ok(path)
}

/// Standard banner for figure binaries.
pub fn banner(what: &str) {
    println!("== DICER reproduction :: {what} ==");
    println!("   (deterministic: fixed seeds, no wall-clock input)");
}

use dicer_appmodel::Catalog;
use dicer_experiments::figures::{policies3, EvalMatrix};
use dicer_experiments::{SoloTable, WorkloadSet};
use dicer_policy::PolicyKind;
use dicer_server::ServerConfig;
use serde::{Deserialize, Serialize};

/// Builds the standard catalog + solo-table pair (Table 1 server).
pub fn setup() -> (Catalog, SoloTable) {
    let catalog = Catalog::paper();
    let solo = SoloTable::build(&catalog, ServerConfig::table1());
    (catalog, solo)
}

/// A `results/*.json` artifact tagged with the fingerprint of everything
/// that determined it, so a model/config/policy change invalidates the
/// cache instead of silently reusing wrong data.
#[derive(Debug, Serialize, Deserialize)]
pub struct CachedArtifact<T> {
    /// [`artifact_fingerprint`] of the inputs that produced `data`.
    pub fingerprint: String,
    /// The cached result.
    pub data: T,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(bytes: &[u8], mut hash: u64) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Deterministic fingerprint of an experiment's inputs: the server
/// configuration, every catalog profile (the catalog iterates in sorted
/// order), and the policy set that will run.
pub fn artifact_fingerprint(cfg: &ServerConfig, catalog: &Catalog, policies: &[String]) -> String {
    let mut h = FNV_OFFSET;
    h = fnv1a(serde_json::to_string(cfg).expect("config serialises").as_bytes(), h);
    for name in catalog.names() {
        h = fnv1a(name.as_bytes(), h);
        let profile = catalog.get(name).expect("listed name resolves");
        h = fnv1a(serde_json::to_string(profile).expect("profile serialises").as_bytes(), h);
    }
    for p in policies {
        h = fnv1a(p.as_bytes(), h);
    }
    format!("{h:016x}")
}

/// Policy identity strings for fingerprinting — `Debug` includes tuning
/// parameters (e.g. the DICER config), so retuning invalidates caches.
fn policy_idents(policies: &[PolicyKind]) -> Vec<String> {
    policies.iter().map(|p| format!("{p:?}")).collect()
}

fn load_cached<T: serde::de::DeserializeOwned>(path: &Path, fingerprint: &str) -> Option<T> {
    let text = fs::read_to_string(path).ok()?;
    // Pre-fingerprint artifacts fail to parse as `CachedArtifact` and are
    // regenerated.
    let artifact = serde_json::from_str::<CachedArtifact<T>>(&text).ok()?;
    if artifact.fingerprint == fingerprint {
        Some(artifact.data)
    } else {
        eprintln!("[bench] cached artifact {} is stale (fingerprint mismatch)", path.display());
        None
    }
}

/// Classifies the full 59 × 59 workload space, reusing a cached
/// `results/classification.json` when it exists *and* its fingerprint
/// matches the current config/catalog/policy set (the classification runs
/// 2 × 3481 co-location experiments — a couple of minutes on first run).
pub fn load_or_classify(catalog: &Catalog, solo: &SoloTable) -> WorkloadSet {
    let path = PathBuf::from(RESULTS_DIR).join("classification.json");
    let fingerprint = artifact_fingerprint(
        solo.config(),
        catalog,
        &policy_idents(&[PolicyKind::Unmanaged, PolicyKind::CacheTakeover]),
    );
    if let Some(set) = load_cached::<WorkloadSet>(&path, &fingerprint) {
        if set.all.len() == catalog.len() * catalog.len() {
            eprintln!("[bench] reusing cached classification ({})", path.display());
            return set;
        }
    }
    eprintln!("[bench] classifying {n} x {n} workloads ...", n = catalog.len());
    let artifact =
        CachedArtifact { fingerprint, data: WorkloadSet::classify(catalog, solo) };
    let _ = write_json("classification", &artifact);
    artifact.data
}

/// Runs (or reloads) the policy × cores × 120-workload evaluation matrix
/// shared by Figs. 5–8, with the same fingerprint staleness check.
pub fn load_or_matrix(catalog: &Catalog, solo: &SoloTable, set: &WorkloadSet) -> EvalMatrix {
    let path = PathBuf::from(RESULTS_DIR).join("matrix.json");
    let cores: Vec<u32> = (2..=solo.config().n_cores).collect();
    let sample = set.sample_120();
    let expected = sample.len() * cores.len() * 3;
    let fingerprint = artifact_fingerprint(solo.config(), catalog, &policy_idents(&policies3()));
    if let Some(m) = load_cached::<EvalMatrix>(&path, &fingerprint) {
        if m.cells.len() == expected {
            eprintln!("[bench] reusing cached matrix ({})", path.display());
            return m;
        }
    }
    eprintln!(
        "[bench] running evaluation matrix: {} workloads x {} core counts x 3 policies ...",
        sample.len(),
        cores.len()
    );
    let artifact = CachedArtifact {
        fingerprint,
        data: EvalMatrix::run(catalog, solo, &sample, &cores, &policies3()),
    };
    let _ = write_json("matrix", &artifact);
    artifact.data
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_stable_and_input_sensitive() {
        let catalog = Catalog::paper();
        let cfg = ServerConfig::table1();
        let pols = policy_idents(&[PolicyKind::Unmanaged, PolicyKind::CacheTakeover]);
        let a = artifact_fingerprint(&cfg, &catalog, &pols);
        let b = artifact_fingerprint(&cfg, &catalog, &pols);
        assert_eq!(a, b, "fingerprint must be deterministic");
        assert_eq!(a.len(), 16);

        let mut other_cfg = cfg;
        other_cfg.freq_hz *= 2.0;
        assert_ne!(a, artifact_fingerprint(&other_cfg, &catalog, &pols), "config change");

        let fewer = policy_idents(&[PolicyKind::Unmanaged]);
        assert_ne!(a, artifact_fingerprint(&cfg, &catalog, &fewer), "policy change");
    }

    #[test]
    fn stale_or_legacy_artifacts_are_rejected() {
        let dir = std::env::temp_dir().join("dicer_bench_cache_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("artifact.json");

        // Legacy format (bare data, no fingerprint) must not load.
        fs::write(&path, "[1, 2, 3]").unwrap();
        assert!(load_cached::<Vec<u32>>(&path, "00").is_none());

        // Matching fingerprint loads; mismatched does not.
        let artifact = CachedArtifact { fingerprint: "abc".to_string(), data: vec![1u32, 2, 3] };
        fs::write(&path, serde_json::to_string(&artifact).unwrap()).unwrap();
        assert_eq!(load_cached::<Vec<u32>>(&path, "abc"), Some(vec![1, 2, 3]));
        assert!(load_cached::<Vec<u32>>(&path, "xyz").is_none());
        let _ = fs::remove_file(&path);
    }
}
