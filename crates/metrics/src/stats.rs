//! Statistical helpers: means and empirical CDFs.

use serde::{Deserialize, Serialize};

/// Geometric mean of strictly positive values.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of empty slice");
    assert!(values.iter().all(|v| *v > 0.0 && v.is_finite()), "geomean needs positive values");
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// Geometric mean that tolerates zeros by flooring at `eps` — used for SUCI,
/// which is exactly 0 on SLA violations.
pub fn geomean_floored(values: &[f64], eps: f64) -> f64 {
    assert!(!values.is_empty());
    assert!(eps > 0.0);
    (values.iter().map(|v| v.max(eps).ln()).sum::<f64>() / values.len() as f64).exp()
}

/// Harmonic mean of strictly positive values.
pub fn hmean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "hmean of empty slice");
    assert!(values.iter().all(|v| *v > 0.0 && v.is_finite()), "hmean needs positive values");
    values.len() as f64 / values.iter().map(|v| 1.0 / v).sum::<f64>()
}

/// An empirical cumulative distribution over observed samples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from samples (NaNs rejected).
    pub fn new(mut samples: Vec<f64>) -> Self {
        assert!(!samples.is_empty(), "CDF needs samples");
        assert!(samples.iter().all(|s| !s.is_nan()), "CDF rejects NaN");
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Self { sorted: samples }
    }

    /// Fraction of samples `<= x` (in `[0, 1]`).
    pub fn fraction_at(&self, x: f64) -> f64 {
        let idx = self.sorted.partition_point(|v| *v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (`q` in `[0, 1]`), by the nearest-rank method.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q));
        if q == 0.0 {
            return self.sorted[0];
        }
        let rank = (q * self.sorted.len() as f64).ceil() as usize;
        self.sorted[rank.clamp(1, self.sorted.len()) - 1]
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always false (construction requires samples); for clippy symmetry.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `(x, fraction)` pairs for plotting the CDF at the given x grid.
    pub fn series(&self, xs: &[f64]) -> Vec<(f64, f64)> {
        xs.iter().map(|&x| (x, self.fraction_at(x))).collect()
    }

    /// Minimum observed sample.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Maximum observed sample.
    pub fn max(&self) -> f64 {
        *self.sorted.last().unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_floored_tolerates_zero() {
        let v = geomean_floored(&[0.0, 1.0], 1e-3);
        assert!(v > 0.0 && v < 0.1);
    }

    #[test]
    fn hmean_basics() {
        // hmean(1, 1/3) = 2 / (1 + 3) = 0.5
        assert!((hmean(&[1.0, 1.0 / 3.0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn hmean_below_geomean_below_amean() {
        let v = [0.3, 0.9, 0.7];
        let am = v.iter().sum::<f64>() / 3.0;
        assert!(hmean(&v) < geomean(&v));
        assert!(geomean(&v) < am);
    }

    #[test]
    fn cdf_fraction_and_quantiles() {
        let c = Cdf::new(vec![3.0, 1.0, 2.0, 4.0]);
        assert_eq!(c.fraction_at(0.5), 0.0);
        assert_eq!(c.fraction_at(2.0), 0.5);
        assert_eq!(c.fraction_at(10.0), 1.0);
        assert_eq!(c.quantile(0.5), 2.0);
        assert_eq!(c.quantile(1.0), 4.0);
        assert_eq!(c.quantile(0.0), 1.0);
        assert_eq!(c.min(), 1.0);
        assert_eq!(c.max(), 4.0);
    }

    #[test]
    fn cdf_series_matches_fractions() {
        let c = Cdf::new(vec![1.0, 2.0]);
        assert_eq!(c.series(&[1.0, 1.5, 2.0]), vec![(1.0, 0.5), (1.5, 0.5), (2.0, 1.0)]);
    }

    #[test]
    fn cdf_handles_duplicates() {
        let c = Cdf::new(vec![1.0; 10]);
        assert_eq!(c.fraction_at(1.0), 1.0);
        assert_eq!(c.fraction_at(0.99), 0.0);
    }

    #[test]
    #[should_panic]
    fn cdf_rejects_nan() {
        Cdf::new(vec![f64::NAN]);
    }
}
