//! Evaluation metrics from the paper (§2.4, §4.1, §4.2).
//!
//! * [`efu`] — Effective Utilisation, Eq. 1: the harmonic mean of IPCs
//!   normalised to solo execution (`IPC_norm_hmean`, Nesbit et al., reference 37).
//! * [`slo_achieved`] — Eq. 5: an application meets an SLO of `q` when its
//!   co-located IPC is at least `q × IPC_alone`.
//! * [`suci`] — Eq. 4: the SLO-Effective-Utilisation Combined Index
//!   `c_SLO · EFU^λ`.
//! * [`slowdown`] — HP execution-time inflation relative to running alone.
//! * [`stats`] — geometric/harmonic means and empirical CDFs used by every
//!   figure.
//! * [`consolidation`] — complementary system-level metrics (weighted
//!   speedup, fairness, worst-case slowdown).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod consolidation;
pub mod stats;

pub use consolidation::{fairness, max_slowdown, weighted_speedup};
pub use stats::{geomean, hmean, Cdf};

/// HP slowdown: co-located completion time over solo completion time.
/// Always ≥ 0; a value of 1 means unaffected.
pub fn slowdown(time_colocated_s: f64, time_alone_s: f64) -> f64 {
    assert!(time_alone_s > 0.0, "solo time must be positive");
    time_colocated_s / time_alone_s
}

/// Normalised IPC (aka QoS level): co-located IPC over solo IPC.
pub fn normalised_ipc(ipc: f64, ipc_alone: f64) -> f64 {
    assert!(ipc_alone > 0.0, "solo IPC must be positive");
    ipc / ipc_alone
}

/// Effective Utilisation (Eq. 1): harmonic mean of normalised IPCs across
/// the HP and all BEs. 1 = no performance loss from co-location.
///
/// `normalised` holds `IPC_i / IPC_alone_i` for every co-located app.
pub fn efu(normalised: &[f64]) -> f64 {
    assert!(!normalised.is_empty(), "EFU needs at least one application");
    assert!(
        normalised.iter().all(|v| *v > 0.0 && v.is_finite()),
        "normalised IPCs must be positive and finite"
    );
    hmean(normalised)
}

/// Eq. 5: whether an SLO of `slo` (e.g. 0.9) is achieved given the
/// normalised IPC of the HP.
pub fn slo_achieved(hp_normalised_ipc: f64, slo: f64) -> bool {
    assert!((0.0..=1.0).contains(&slo), "SLO must be a fraction");
    hp_normalised_ipc >= slo
}

/// Eq. 4: SLO-Effective-Utilisation Combined Index, `c_SLO · EFU^λ`.
///
/// Zero when the SLO is missed (an SLA violation disregards any BE gains);
/// otherwise EFU raised to λ — λ > 1 weights utilisation more, λ < 1 weights
/// SLO conformance more.
pub fn suci(hp_normalised_ipc: f64, efu_value: f64, slo: f64, lambda: f64) -> f64 {
    assert!(efu_value >= 0.0 && lambda > 0.0);
    if slo_achieved(hp_normalised_ipc, slo) {
        efu_value.powf(lambda)
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slowdown_of_equal_times_is_one() {
        assert_eq!(slowdown(10.0, 10.0), 1.0);
        assert_eq!(slowdown(15.0, 10.0), 1.5);
    }

    #[test]
    fn efu_of_perfect_run_is_one() {
        assert!((efu(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn efu_matches_eq1_by_hand() {
        // n / sum(1/norm_i): 3 / (2 + 1 + 4) = 3/7.
        let v = efu(&[0.5, 1.0, 0.25]);
        assert!((v - 3.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn efu_punishes_a_single_starved_app() {
        let balanced = efu(&[0.8, 0.8, 0.8]);
        let skewed = efu(&[1.0, 1.0, 0.1]);
        assert!(balanced > skewed, "harmonic mean must punish starvation");
    }

    #[test]
    fn slo_boundary_inclusive() {
        assert!(slo_achieved(0.9, 0.9));
        assert!(!slo_achieved(0.8999, 0.9));
    }

    #[test]
    fn suci_zero_on_violation() {
        assert_eq!(suci(0.5, 0.9, 0.8, 1.0), 0.0);
    }

    #[test]
    fn suci_equals_efu_at_unit_lambda() {
        assert!((suci(0.95, 0.7, 0.8, 1.0) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn suci_lambda_reweights_utilisation() {
        // EFU < 1, so λ=2 penalises low utilisation, λ=0.5 forgives it.
        let low = suci(1.0, 0.5, 0.8, 2.0);
        let mid = suci(1.0, 0.5, 0.8, 1.0);
        let high = suci(1.0, 0.5, 0.8, 0.5);
        assert!(low < mid && mid < high);
    }

    #[test]
    #[should_panic]
    fn efu_rejects_empty() {
        efu(&[]);
    }

    #[test]
    #[should_panic]
    fn efu_rejects_nonpositive() {
        efu(&[1.0, 0.0]);
    }
}
