//! Additional multi-programmed consolidation metrics from the literature
//! the paper builds on (Eyerman & Eeckhout's system-level metrics), used by
//! the report tooling alongside the paper's EFU/SUCI.

/// Weighted speedup (a.k.a. system throughput): the arithmetic mean of
/// normalised IPCs. Unlike EFU's harmonic mean it rewards total progress
/// even when one application starves.
pub fn weighted_speedup(normalised: &[f64]) -> f64 {
    assert!(!normalised.is_empty(), "weighted speedup needs at least one app");
    assert!(normalised.iter().all(|v| v.is_finite() && *v >= 0.0));
    normalised.iter().sum::<f64>() / normalised.len() as f64
}

/// Fairness: the minimum over the maximum normalised IPC (1 = perfectly
/// fair, → 0 as one application starves relative to another).
pub fn fairness(normalised: &[f64]) -> f64 {
    assert!(!normalised.is_empty(), "fairness needs at least one app");
    assert!(normalised.iter().all(|v| v.is_finite() && *v > 0.0));
    let min = normalised.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = normalised.iter().cloned().fold(0.0f64, f64::max);
    min / max
}

/// Maximum slowdown across the co-scheduled applications — the worst-case
/// guarantee a provider could advertise.
pub fn max_slowdown(normalised: &[f64]) -> f64 {
    assert!(!normalised.is_empty());
    assert!(normalised.iter().all(|v| v.is_finite() && *v > 0.0));
    1.0 / normalised.iter().cloned().fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{efu, hmean};

    #[test]
    fn weighted_speedup_is_arithmetic_mean() {
        assert!((weighted_speedup(&[1.0, 0.5]) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn weighted_speedup_at_least_efu() {
        // AM >= HM always.
        let v = [0.9, 0.4, 0.7, 0.2];
        assert!(weighted_speedup(&v) >= efu(&v));
        assert!((efu(&v) - hmean(&v)).abs() < 1e-12);
    }

    #[test]
    fn fairness_bounds() {
        assert_eq!(fairness(&[0.8, 0.8, 0.8]), 1.0);
        assert!((fairness(&[1.0, 0.25]) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn fairness_order_invariant() {
        assert_eq!(fairness(&[0.2, 0.9]), fairness(&[0.9, 0.2]));
    }

    #[test]
    fn max_slowdown_tracks_the_victim() {
        assert!((max_slowdown(&[1.0, 0.5, 0.8]) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn fairness_rejects_zero() {
        fairness(&[0.0, 1.0]);
    }
}
