//! Memory-link capacity, latency inflation, and overload sharing.

use serde::{Deserialize, Serialize};

/// Static parameters of the memory link.
///
/// Defaults mirror Table 1 of the paper: the evaluation machine exposes
/// 68.3 Gbps of memory bandwidth and DICER flags saturation above 50 Gbps.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Peak deliverable bandwidth of the link in Gbps.
    pub capacity_gbps: f64,
    /// Unloaded (idle-link) memory access latency in nanoseconds.
    pub base_latency_ns: f64,
    /// Utilisation at which queueing delay starts to be noticeable.
    /// Below this point the latency multiplier is exactly 1.
    pub knee_utilisation: f64,
    /// Utilisation cap used by the latency model; demand beyond this point
    /// saturates the multiplier instead of diverging.
    pub max_utilisation: f64,
    /// Exponent on the queueing growth term: latency multiplies like
    /// `((1-knee)/(1-u))^p`. `p = 1` is M/M/1; larger values model the
    /// super-linear collapse real memory controllers exhibit once row-buffer
    /// locality and bank parallelism are exhausted.
    pub contention_exponent: f64,
}

impl Default for LinkConfig {
    fn default() -> Self {
        Self {
            capacity_gbps: 68.3,
            base_latency_ns: 90.0,
            knee_utilisation: 0.65,
            max_utilisation: 0.97,
            contention_exponent: 2.0,
        }
    }
}

impl LinkConfig {
    /// Validates the configuration, returning a description of the first
    /// violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !self.capacity_gbps.is_finite() || self.capacity_gbps <= 0.0 {
            return Err(format!("capacity must be positive, got {}", self.capacity_gbps));
        }
        if !self.base_latency_ns.is_finite() || self.base_latency_ns <= 0.0 {
            return Err(format!("base latency must be positive, got {}", self.base_latency_ns));
        }
        if !(0.0..1.0).contains(&self.knee_utilisation) {
            return Err(format!("knee utilisation must be in [0,1), got {}", self.knee_utilisation));
        }
        if self.knee_utilisation >= self.max_utilisation || self.max_utilisation >= 1.0 {
            return Err(format!(
                "need knee < max_utilisation < 1, got knee={} max={}",
                self.knee_utilisation, self.max_utilisation
            ));
        }
        if !self.contention_exponent.is_finite() || self.contention_exponent < 1.0 {
            return Err(format!(
                "contention exponent must be >= 1, got {}",
                self.contention_exponent
            ));
        }
        Ok(())
    }
}

/// Result of resolving concurrent demands against the link capacity.
#[derive(Debug, Clone, PartialEq)]
pub struct ShareOutcome {
    /// Achieved bandwidth per stream, in Gbps, same order as the demands.
    pub achieved_gbps: Vec<f64>,
    /// Total achieved bandwidth in Gbps (capped at capacity).
    pub total_gbps: f64,
    /// Link utilisation computed from *offered* demand (may exceed 1).
    pub offered_utilisation: f64,
    /// Latency multiplier implied by the offered utilisation.
    pub latency_multiplier: f64,
}

/// Queueing-style model of a shared memory link.
///
/// The model has two effects:
///
/// 1. **Latency inflation** — below the knee utilisation the access latency
///    equals [`LinkConfig::base_latency_ns`]; above it, latency grows like a
///    single-server queue, `1 / (1 - u)` (normalised to be continuous at the
///    knee). Offered demand above [`LinkConfig::max_utilisation`] pins the
///    multiplier at its maximum instead of diverging.
/// 2. **Throughput sharing** — when offered demand exceeds capacity, each
///    stream receives bandwidth proportional to its demand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkModel {
    cfg: LinkConfig,
}

impl LinkModel {
    /// Builds a model; panics if `cfg` is invalid (use
    /// [`LinkConfig::validate`] first for fallible construction).
    pub fn new(cfg: LinkConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid LinkConfig: {e}");
        }
        Self { cfg }
    }

    /// The configuration this model was built from.
    pub fn config(&self) -> &LinkConfig {
        &self.cfg
    }

    /// Latency multiplier for a given offered utilisation (`demand /
    /// capacity`). Always `>= 1`, monotonically non-decreasing, and equal to
    /// 1 below the knee.
    pub fn latency_multiplier(&self, offered_utilisation: f64) -> f64 {
        let u = offered_utilisation.clamp(0.0, self.cfg.max_utilisation);
        let knee = self.cfg.knee_utilisation;
        if u <= knee {
            return 1.0;
        }
        // M/M/1-style growth, renormalised to equal 1 exactly at the knee so
        // the curve is continuous, raised to the configured exponent.
        ((1.0 - knee) / (1.0 - u)).powf(self.cfg.contention_exponent)
    }

    /// Effective memory latency in nanoseconds at the given offered
    /// utilisation.
    pub fn effective_latency_ns(&self, offered_utilisation: f64) -> f64 {
        self.cfg.base_latency_ns * self.latency_multiplier(offered_utilisation)
    }

    /// Resolves a set of offered per-stream demands (Gbps) against the link.
    ///
    /// Returns achieved bandwidths (proportionally scaled if the sum exceeds
    /// capacity), the total, the offered utilisation, and the latency
    /// multiplier implied by that utilisation.
    pub fn share(&self, demands_gbps: &[f64]) -> ShareOutcome {
        debug_assert!(
            demands_gbps.iter().all(|d| d.is_finite() && *d >= 0.0),
            "demands must be finite and non-negative"
        );
        let offered: f64 = demands_gbps.iter().sum();
        let offered_utilisation = offered / self.cfg.capacity_gbps;
        let scale = if offered > self.cfg.capacity_gbps {
            self.cfg.capacity_gbps / offered
        } else {
            1.0
        };
        let achieved_gbps: Vec<f64> = demands_gbps.iter().map(|d| d * scale).collect();
        let total_gbps = offered.min(self.cfg.capacity_gbps);
        ShareOutcome {
            achieved_gbps,
            total_gbps,
            offered_utilisation,
            latency_multiplier: self.latency_multiplier(offered_utilisation),
        }
    }
}

impl Default for LinkModel {
    fn default() -> Self {
        Self::new(LinkConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> LinkModel {
        LinkModel::default()
    }

    #[test]
    fn default_config_is_valid() {
        LinkConfig::default().validate().unwrap();
    }

    #[test]
    fn validate_rejects_nonpositive_capacity() {
        let cfg = LinkConfig { capacity_gbps: 0.0, ..Default::default() };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_knee_ordering() {
        let cfg = LinkConfig { knee_utilisation: 0.99, max_utilisation: 0.97, ..Default::default() };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validate_rejects_negative_latency() {
        let cfg = LinkConfig { base_latency_ns: -1.0, ..Default::default() };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn multiplier_is_one_below_knee() {
        let m = model();
        assert_eq!(m.latency_multiplier(0.0), 1.0);
        assert_eq!(m.latency_multiplier(0.3), 1.0);
        assert_eq!(m.latency_multiplier(0.65), 1.0);
    }

    #[test]
    fn multiplier_continuous_at_knee() {
        let m = model();
        let just_above = m.latency_multiplier(0.650001);
        assert!((just_above - 1.0).abs() < 1e-4, "multiplier jumped at knee: {just_above}");
    }

    #[test]
    fn multiplier_grows_monotonically() {
        let m = model();
        let mut prev = 0.0;
        for i in 0..=100 {
            let u = i as f64 / 100.0;
            let v = m.latency_multiplier(u);
            assert!(v >= prev, "non-monotone at u={u}: {v} < {prev}");
            prev = v;
        }
    }

    #[test]
    fn multiplier_saturates_at_cap() {
        let m = model();
        assert_eq!(m.latency_multiplier(0.97), m.latency_multiplier(5.0));
        // At the cap, ((1 - knee) / (1 - max))^p: ((1-0.65)/0.03)^2.
        let expect = ((1.0 - 0.65f64) / (1.0 - 0.97)).powi(2);
        assert!((m.latency_multiplier(5.0) - expect).abs() < 1e-9);
    }

    #[test]
    fn effective_latency_scales_base() {
        let m = model();
        assert_eq!(m.effective_latency_ns(0.0), 90.0);
        assert!(m.effective_latency_ns(0.9) > 90.0);
    }

    #[test]
    fn share_under_capacity_passes_through() {
        let m = model();
        let out = m.share(&[10.0, 20.0]);
        assert_eq!(out.achieved_gbps, vec![10.0, 20.0]);
        assert!((out.total_gbps - 30.0).abs() < 1e-12);
        assert!(out.offered_utilisation < 0.5);
        assert_eq!(out.latency_multiplier, 1.0);
    }

    #[test]
    fn share_over_capacity_scales_proportionally() {
        let m = model();
        let out = m.share(&[68.3, 68.3]);
        assert!((out.total_gbps - 68.3).abs() < 1e-9);
        assert!((out.achieved_gbps[0] - 34.15).abs() < 1e-9);
        assert!((out.achieved_gbps[1] - 34.15).abs() < 1e-9);
        assert!((out.offered_utilisation - 2.0).abs() < 1e-12);
        assert!(out.latency_multiplier > 10.0);
    }

    #[test]
    fn share_empty_demands() {
        let m = model();
        let out = m.share(&[]);
        assert!(out.achieved_gbps.is_empty());
        assert_eq!(out.total_gbps, 0.0);
        assert_eq!(out.latency_multiplier, 1.0);
    }

    #[test]
    fn share_preserves_ordering_of_streams() {
        let m = model();
        let out = m.share(&[50.0, 25.0, 5.0]);
        assert!(out.achieved_gbps[0] > out.achieved_gbps[1]);
        assert!(out.achieved_gbps[1] > out.achieved_gbps[2]);
    }
}
