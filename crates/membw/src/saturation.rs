//! Bandwidth-saturation detection (Listing 1 of the paper).
//!
//! DICER's `monitor()` step flags `BW_saturated` whenever the total memory
//! traffic observed during the last monitoring period exceeds
//! `MemBW_threshold` (50 Gbps in Table 1).

use serde::{Deserialize, Serialize};

/// Threshold detector over total link traffic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SaturationDetector {
    /// Saturation threshold in Gbps (`MemBW_threshold` in the paper).
    pub threshold_gbps: f64,
}

impl Default for SaturationDetector {
    fn default() -> Self {
        Self { threshold_gbps: 50.0 }
    }
}

impl SaturationDetector {
    /// Builds a detector with the given threshold.
    pub fn new(threshold_gbps: f64) -> Self {
        assert!(threshold_gbps > 0.0, "threshold must be positive");
        Self { threshold_gbps }
    }

    /// Returns `true` if the observed total bandwidth exceeds the threshold.
    pub fn is_saturated(&self, total_bw_gbps: f64) -> bool {
        total_bw_gbps > self.threshold_gbps
    }

    /// Convenience: detect saturation from per-stream traffic.
    pub fn is_saturated_by(&self, per_stream_gbps: &[f64]) -> bool {
        self.is_saturated(per_stream_gbps.iter().sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table1() {
        assert_eq!(SaturationDetector::default().threshold_gbps, 50.0);
    }

    #[test]
    fn below_threshold_not_saturated() {
        let d = SaturationDetector::default();
        assert!(!d.is_saturated(49.9));
        assert!(!d.is_saturated(50.0)); // strictly greater, per Listing 1
    }

    #[test]
    fn above_threshold_saturated() {
        let d = SaturationDetector::default();
        assert!(d.is_saturated(50.01));
    }

    #[test]
    fn per_stream_sum_detection() {
        let d = SaturationDetector::new(30.0);
        assert!(d.is_saturated_by(&[10.0, 10.0, 10.5]));
        assert!(!d.is_saturated_by(&[10.0, 10.0, 9.5]));
    }

    #[test]
    #[should_panic]
    fn zero_threshold_rejected() {
        SaturationDetector::new(0.0);
    }
}
