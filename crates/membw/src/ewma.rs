//! Exponentially weighted moving average for noisy per-period counters.

use serde::{Deserialize, Serialize};

/// Exponentially weighted moving average.
///
/// `alpha` is the weight given to the newest observation; `alpha = 1`
/// disables smoothing entirely.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates a smoother with smoothing factor `alpha` in `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1], got {alpha}");
        Self { alpha, value: None }
    }

    /// Feeds one observation, returning the updated average.
    pub fn update(&mut self, x: f64) -> f64 {
        let v = match self.value {
            None => x,
            Some(prev) => self.alpha * x + (1.0 - self.alpha) * prev,
        };
        self.value = Some(v);
        v
    }

    /// Feeds a possibly-missing observation. On `Some(x)` this is exactly
    /// [`Ewma::update`]; on `None` (a dropped monitoring sample) the average
    /// holds its last value instead of decaying towards zero — a lost MBM
    /// read means "no information", not "zero bandwidth". Returns the
    /// post-update value, which is `None` only before the first real
    /// observation.
    pub fn update_missing(&mut self, x: Option<f64>) -> Option<f64> {
        match x {
            Some(x) => Some(self.update(x)),
            None => self.value,
        }
    }

    /// Current smoothed value, or `None` before any observation.
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// Discards accumulated history.
    pub fn reset(&mut self) {
        self.value = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_observation_passes_through() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.update(10.0), 10.0);
    }

    #[test]
    fn smooths_towards_new_values() {
        let mut e = Ewma::new(0.5);
        e.update(0.0);
        assert_eq!(e.update(10.0), 5.0);
        assert_eq!(e.update(10.0), 7.5);
    }

    #[test]
    fn alpha_one_is_identity() {
        let mut e = Ewma::new(1.0);
        e.update(3.0);
        assert_eq!(e.update(7.0), 7.0);
    }

    #[test]
    fn reset_clears_state() {
        let mut e = Ewma::new(0.5);
        e.update(100.0);
        e.reset();
        assert_eq!(e.value(), None);
        assert_eq!(e.update(4.0), 4.0);
    }

    #[test]
    #[should_panic]
    fn rejects_zero_alpha() {
        Ewma::new(0.0);
    }

    #[test]
    fn missing_observation_holds_last_value() {
        let mut e = Ewma::new(0.5);
        e.update(10.0);
        assert_eq!(e.update_missing(None), Some(10.0));
        assert_eq!(e.value(), Some(10.0), "hold, do not decay");
        // Smoothing resumes from the held value.
        assert_eq!(e.update_missing(Some(20.0)), Some(15.0));
    }

    #[test]
    fn missing_before_first_observation_stays_empty() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.update_missing(None), None);
        assert_eq!(e.value(), None);
        assert_eq!(e.update_missing(Some(4.0)), Some(4.0));
    }

    #[test]
    fn update_missing_some_matches_update() {
        let mut a = Ewma::new(0.3);
        let mut b = Ewma::new(0.3);
        for x in [1.0, 2.0, 8.0, 4.0] {
            assert_eq!(a.update(x), b.update_missing(Some(x)).unwrap());
        }
    }

    #[test]
    fn converges_to_constant_input() {
        let mut e = Ewma::new(0.3);
        for _ in 0..200 {
            e.update(42.0);
        }
        assert!((e.value().unwrap() - 42.0).abs() < 1e-9);
    }
}
