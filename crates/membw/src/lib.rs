//! Memory-link bandwidth model for the DICER server simulator.
//!
//! The paper's Key Observation 2 hinges on *memory bandwidth saturation*:
//! when Cache-Takeover squeezes all best-effort applications into a single
//! LLC way, their miss traffic saturates the memory link and a
//! bandwidth-sensitive high-priority application slows down even though it
//! owns almost the whole cache. This crate models that mechanism:
//!
//! * [`LinkConfig`] — capacity and latency parameters of the memory link
//!   (defaults follow Table 1 of the paper: 68.3 Gbps capacity, 50 Gbps
//!   saturation threshold).
//! * [`LinkModel`] — queueing-style latency inflation as a function of link
//!   utilisation, plus proportional throughput sharing under overload.
//! * [`SaturationDetector`] — the per-period threshold test DICER uses.
//! * [`Ewma`] — exponentially weighted smoothing for noisy counters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ewma;
pub mod link;
pub mod saturation;

pub use ewma::Ewma;
pub use link::{LinkConfig, LinkModel, ShareOutcome};
pub use saturation::SaturationDetector;
