//! Hierarchical span tracing and self-profiling.
//!
//! A [`Span`] is one timed region of the control loop — the whole session,
//! one monitoring period, or one of the stages inside it (sensor read,
//! policy step, equilibrium solve, partition apply, sweep job). Spans form
//! a hierarchy through parent ids and flow over the ordinary
//! [`crate::TelemetrySink`] as [`crate::TelemetryEvent::Span`] events, so
//! every existing sink (JSONL, ring buffer, fan-out, metrics folding)
//! works on them unchanged.
//!
//! # Two clocks
//!
//! Spans always carry **logical time**: every open and close takes one
//! tick from the tracer's monotone counter, so start/end ticks encode the
//! exact nesting and ordering of the run. Logical time is a pure function
//! of control flow — reruns of a deterministic run produce byte-identical
//! span streams, which is what keeps the committed goldens and the
//! `dicer-trace` Chrome export byte-stable.
//!
//! **Wall-clock time** is opt-in ([`Tracer::with_wall_clock`]): spans
//! additionally record their real duration in nanoseconds. Wall timing is
//! for live self-profiling (the `dicerd` daemon folds it into per-stage
//! latency histograms) and is never byte-stable; golden-producing paths
//! use the sim clock only.
//!
//! # Hierarchy and hot-path cost
//!
//! The conventional stage names are the [`stage`] constants:
//!
//! ```text
//! session
//! └── period                   (one per monitoring period)
//!     ├── sensor_read          (platform step + fault injection)
//!     │   ├── apply_retry      (pending-plan retry, fault layer)
//!     │   └── equilibrium_solve  (one per solver call)
//!     ├── policy_step          (controller decision)
//!     └── partition_apply      (plan actuation, when the plan changed)
//! sweep_job                    (one per sweep item, own lane per job)
//! ```
//!
//! A disabled [`Tracer`] ([`Tracer::off`], the default everywhere) costs
//! one branch per span site — no ids, no ticks, no allocation. An enabled
//! sim-clock tracer costs two relaxed atomic increments per span plus one
//! event emission at close.
//!
//! # Concurrency
//!
//! One tracer traces one logical thread of control: the current-parent
//! context is a single cell, so spans opened from concurrent threads
//! through the *same* tracer would race for parentage. Parallel sweeps
//! instead give every job its own tracer via [`Tracer::job`] — fresh tick
//! and id counters (deterministic per job), a per-job lane for the Chrome
//! export's `tid`, and the shared sink.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::event::{json_opt_f64, json_str, TelemetryEvent};
use crate::sink::Telemetry;

/// Conventional span names used across the workspace. Free-form names are
/// allowed; these are the ones the instrumented stack emits and the ones
/// `dicer-trace` and the `dicerd` stage histograms know how to label.
pub mod stage {
    /// The whole run: one per [`Session`](https://docs.rs/) period loop.
    pub const SESSION: &str = "session";
    /// One monitoring period.
    pub const PERIOD: &str = "period";
    /// Platform stepping + monitoring delivery (includes fault injection).
    pub const SENSOR_READ: &str = "sensor_read";
    /// The controller's decision for the period.
    pub const POLICY_STEP: &str = "policy_step";
    /// One equilibrium-solver call.
    pub const EQUILIBRIUM_SOLVE: &str = "equilibrium_solve";
    /// Actuating a changed partition plan.
    pub const PARTITION_APPLY: &str = "partition_apply";
    /// Settling a pending (failed/delayed) apply at a period boundary.
    pub const APPLY_RETRY: &str = "apply_retry";
    /// One item of a parallel sweep.
    pub const SWEEP_JOB: &str = "sweep_job";
}

/// Bucket bounds (seconds) for per-stage wall-latency histograms. Spans
/// range from sub-microsecond stage bodies to multi-second sweep jobs.
pub const STAGE_SECONDS_BOUNDS: [f64; 12] = [
    1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 60.0, 300.0, 1800.0,
];

/// One closed span, as carried on the telemetry bus.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Span name (a [`stage`] constant for instrumented stack stages).
    pub name: &'static str,
    /// Unique id within the tracer (from 1; 0 is reserved for "no span").
    pub id: u64,
    /// Parent span id; 0 for a root span.
    pub parent: u64,
    /// Logical lane (rayon worker / sweep job index; Chrome `tid`).
    pub lane: u32,
    /// Logical open tick (deterministic; Chrome `ts` in microseconds).
    pub start: u64,
    /// Logical close tick (strictly greater than `start`).
    pub end: u64,
    /// Simulated time noted on the span, seconds (`None` when the span
    /// carries no sim-time annotation).
    pub time_s: Option<f64>,
    /// Wall-clock duration in nanoseconds; `None` on a sim-clock tracer.
    pub wall_ns: Option<u64>,
    /// Free-form detail (sweep-job key, solver batch size); empty = none.
    pub label: String,
}

impl SpanEvent {
    /// Logical duration in ticks.
    pub fn ticks(&self) -> u64 {
        self.end - self.start
    }

    /// One JSON object, fixed field order (the bus rendering used by
    /// [`crate::TelemetryEvent::to_json`]).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"event\":\"span\",\"name\":{},\"id\":{},\"parent\":{},\"lane\":{},\
             \"start\":{},\"end\":{},\"time_s\":{},\"wall_ns\":{},\"label\":{}}}",
            json_str(self.name),
            self.id,
            self.parent,
            self.lane,
            self.start,
            self.end,
            json_opt_f64(self.time_s),
            match self.wall_ns {
                Some(ns) => ns.to_string(),
                None => "null".to_string(),
            },
            if self.label.is_empty() { "null".to_string() } else { json_str(&self.label) },
        )
    }
}

struct TracerCore {
    bus: Telemetry,
    /// Logical clock: one tick per span open/close.
    ticks: AtomicU64,
    /// Next span id (ids start at 1).
    next_id: AtomicU64,
    /// Id of the innermost open span (the parent of the next one); 0 = none.
    current: AtomicU64,
    /// Wall-clock epoch; `Some` enables wall timing on every span.
    epoch: Option<Instant>,
}

/// Cheap, cloneable span factory. Disabled by default ([`Tracer::off`]);
/// enabled tracers emit one [`TelemetryEvent::Span`] per closed span into
/// their bus.
#[derive(Clone, Default)]
pub struct Tracer {
    core: Option<Arc<TracerCore>>,
    lane: u32,
}

impl Tracer {
    /// The disabled tracer: every span site is a single branch.
    pub fn off() -> Self {
        Tracer { core: None, lane: 0 }
    }

    /// A sim-clock tracer emitting into `bus`. Deterministic: reruns of a
    /// deterministic run produce byte-identical span streams.
    pub fn new(bus: Telemetry) -> Self {
        Self::build(bus, None)
    }

    /// A tracer that additionally records wall-clock durations. Not
    /// byte-stable; never wire this into a golden-producing path.
    pub fn with_wall_clock(bus: Telemetry) -> Self {
        Self::build(bus, Some(Instant::now()))
    }

    fn build(bus: Telemetry, epoch: Option<Instant>) -> Self {
        Tracer {
            core: Some(Arc::new(TracerCore {
                bus,
                ticks: AtomicU64::new(0),
                next_id: AtomicU64::new(1),
                current: AtomicU64::new(0),
                epoch,
            })),
            lane: 0,
        }
    }

    /// Whether spans go anywhere.
    pub fn enabled(&self) -> bool {
        self.core.is_some()
    }

    /// An independent per-job tracer for one item of a parallel sweep:
    /// fresh tick/id counters and parent context (deterministic within the
    /// job), the given lane, and the same bus and clock mode. Disabled
    /// tracers fork to disabled tracers.
    pub fn job(&self, lane: u32) -> Tracer {
        match &self.core {
            None => Tracer::off(),
            Some(core) => Tracer {
                core: Some(Arc::new(TracerCore {
                    bus: core.bus.clone(),
                    ticks: AtomicU64::new(0),
                    next_id: AtomicU64::new(1),
                    current: AtomicU64::new(0),
                    epoch: core.epoch,
                })),
                lane,
            },
        }
    }

    /// Opens a span as a child of the innermost open span. Close (and
    /// emission) happens when the returned guard drops.
    pub fn span(&self, name: &'static str) -> SpanGuard {
        self.span_labelled(name, String::new())
    }

    /// [`Tracer::span`] with a free-form detail label built only when the
    /// tracer is enabled — use when formatting the label allocates (the
    /// hot-path analogue of [`Telemetry::emit_with`]).
    ///
    /// [`Telemetry::emit_with`]: crate::Telemetry::emit_with
    pub fn span_labelled_with(
        &self,
        name: &'static str,
        label: impl FnOnce() -> String,
    ) -> SpanGuard {
        if self.core.is_none() {
            return self.span_labelled(name, String::new());
        }
        self.span_labelled(name, label())
    }

    /// [`Tracer::span`] with a free-form detail label.
    pub fn span_labelled(&self, name: &'static str, label: String) -> SpanGuard {
        let Some(core) = &self.core else {
            return SpanGuard {
                core: None,
                name,
                label: String::new(),
                id: 0,
                parent: 0,
                lane: 0,
                start: 0,
                wall_start_ns: 0,
                time_s: None,
            };
        };
        let id = core.next_id.fetch_add(1, Ordering::Relaxed);
        let parent = core.current.swap(id, Ordering::Relaxed);
        let start = core.ticks.fetch_add(1, Ordering::Relaxed);
        let wall_start_ns = match &core.epoch {
            Some(epoch) => epoch.elapsed().as_nanos() as u64,
            None => 0,
        };
        SpanGuard {
            core: Some(core.clone()),
            name,
            label,
            id,
            parent,
            lane: self.lane,
            start,
            wall_start_ns,
            time_s: None,
        }
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled())
            .field("lane", &self.lane)
            .finish()
    }
}

/// An open span. Dropping it closes the span, emits the
/// [`TelemetryEvent::Span`] and restores its parent as the tracer's
/// current span.
#[must_use = "a span measures the region it is alive for"]
pub struct SpanGuard {
    core: Option<Arc<TracerCore>>,
    name: &'static str,
    label: String,
    id: u64,
    parent: u64,
    lane: u32,
    start: u64,
    wall_start_ns: u64,
    time_s: Option<f64>,
}

impl SpanGuard {
    /// Annotates the span with a simulated timestamp (seconds). The last
    /// note before close wins.
    pub fn note_time(&mut self, time_s: f64) {
        if self.core.is_some() {
            self.time_s = Some(time_s);
        }
    }

    /// Replaces the span's detail label.
    pub fn note_label(&mut self, label: String) {
        if self.core.is_some() {
            self.label = label;
        }
    }

    /// Replaces the span's detail label, building it lazily — the closure
    /// never runs on a disabled tracer, so hot paths stay allocation-free.
    pub fn note_label_with(&mut self, label: impl FnOnce() -> String) {
        if self.core.is_some() {
            self.label = label();
        }
    }

    /// This span's id (0 on a disabled tracer).
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(core) = self.core.take() else { return };
        let end = core.ticks.fetch_add(1, Ordering::Relaxed);
        core.current.store(self.parent, Ordering::Relaxed);
        let wall_ns = core
            .epoch
            .as_ref()
            .map(|epoch| (epoch.elapsed().as_nanos() as u64).saturating_sub(self.wall_start_ns));
        core.bus.emit(&TelemetryEvent::Span(SpanEvent {
            name: self.name,
            id: self.id,
            parent: self.parent,
            lane: self.lane,
            start: self.start,
            end,
            time_s: self.time_s,
            wall_ns,
            label: std::mem::take(&mut self.label),
        }));
    }
}

/// Incremental Chrome trace-event JSON writer (the `chrome://tracing` /
/// Perfetto "JSON Array Format"). Spans render as complete (`"ph":"X"`)
/// events: `ts`/`dur` are the logical ticks in microseconds, `tid` is the
/// span's lane, and sim time, wall duration and label ride in `args`.
/// Output is deterministic for a given push sequence.
pub struct ChromeTraceBuilder {
    buf: String,
    any: bool,
}

impl Default for ChromeTraceBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ChromeTraceBuilder {
    /// An empty trace document.
    pub fn new() -> Self {
        ChromeTraceBuilder { buf: String::from("{\"traceEvents\":["), any: false }
    }

    /// Appends one complete event. `name`/`label` may be any string; the
    /// remaining fields mirror [`SpanEvent`].
    #[allow(clippy::too_many_arguments)]
    pub fn push(
        &mut self,
        name: &str,
        id: u64,
        parent: u64,
        lane: u32,
        start: u64,
        end: u64,
        time_s: Option<f64>,
        wall_ns: Option<u64>,
        label: &str,
    ) {
        if self.any {
            self.buf.push(',');
        }
        self.any = true;
        self.buf.push_str(&format!(
            "\n{{\"name\":{},\"cat\":\"dicer\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
             \"ts\":{},\"dur\":{},\"args\":{{\"id\":{},\"parent\":{},\"time_s\":{},\
             \"wall_ns\":{},\"label\":{}}}}}",
            json_str(name),
            lane,
            start,
            end - start,
            id,
            parent,
            json_opt_f64(time_s),
            match wall_ns {
                Some(ns) => ns.to_string(),
                None => "null".to_string(),
            },
            if label.is_empty() { "null".to_string() } else { json_str(label) },
        ));
    }

    /// Appends one [`SpanEvent`].
    pub fn push_span(&mut self, s: &SpanEvent) {
        self.push(
            s.name, s.id, s.parent, s.lane, s.start, s.end, s.time_s, s.wall_ns, &s.label,
        );
    }

    /// Closes the document and returns the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
        self.buf
    }
}

/// Renders a span list as a Chrome trace-event JSON document (see
/// [`ChromeTraceBuilder`]). Byte-stable for a given span sequence.
pub fn chrome_trace_json(spans: &[SpanEvent]) -> String {
    let mut b = ChromeTraceBuilder::new();
    for s in spans {
        b.push_span(s);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::CollectingSink;

    fn spans_of(sink: &CollectingSink) -> Vec<SpanEvent> {
        sink.take()
            .into_iter()
            .filter_map(|e| match e {
                TelemetryEvent::Span(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn off_tracer_is_free_and_silent() {
        let t = Tracer::off();
        assert!(!t.enabled());
        let mut g = t.span(stage::PERIOD);
        g.note_time(1.0);
        assert_eq!(g.id(), 0);
        drop(g); // must not panic or emit
        assert!(!t.job(3).enabled());
    }

    #[test]
    fn spans_nest_and_close_in_order() {
        let sink = Arc::new(CollectingSink::new());
        let t = Tracer::new(Telemetry::new(sink.clone()));
        {
            let session = t.span(stage::SESSION);
            {
                let period = t.span(stage::PERIOD);
                let read = t.span(stage::SENSOR_READ);
                drop(read);
                let step = t.span(stage::POLICY_STEP);
                drop(step);
                drop(period);
            }
            drop(session);
        }
        let spans = spans_of(&sink);
        // Spans emit at close: innermost first.
        let names: Vec<&str> = spans.iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["sensor_read", "policy_step", "period", "session"]);
        let by_name = |n: &str| spans.iter().find(|s| s.name == n).unwrap();
        let session = by_name("session");
        let period = by_name("period");
        assert_eq!(session.parent, 0, "session is a root span");
        assert_eq!(period.parent, session.id);
        assert_eq!(by_name("sensor_read").parent, period.id);
        assert_eq!(by_name("policy_step").parent, period.id);
        // Ticks bracket children strictly.
        assert!(session.start < period.start && period.end < session.end);
        assert!(period.start < by_name("sensor_read").start);
        assert!(by_name("sensor_read").end < by_name("policy_step").start);
    }

    #[test]
    fn parent_context_restores_after_close() {
        let sink = Arc::new(CollectingSink::new());
        let t = Tracer::new(Telemetry::new(sink.clone()));
        let root = t.span(stage::SESSION);
        drop(t.span(stage::PERIOD)); // open + close a child
        let sibling = t.span(stage::PERIOD);
        drop(sibling);
        drop(root);
        let spans = spans_of(&sink);
        assert_eq!(spans.len(), 3);
        let root_id = spans.last().unwrap().id;
        assert!(
            spans[..2].iter().all(|s| s.parent == root_id),
            "both periods are children of the session, not of each other"
        );
    }

    #[test]
    fn sim_clock_spans_are_deterministic() {
        let run = || {
            let sink = Arc::new(CollectingSink::new());
            let t = Tracer::new(Telemetry::new(sink.clone()));
            let mut s = t.span(stage::SESSION);
            s.note_time(2.0);
            drop(t.span_labelled(stage::SWEEP_JOB, "job0".into()));
            drop(s);
            spans_of(&sink)
                .iter()
                .map(SpanEvent::to_json)
                .collect::<Vec<_>>()
                .join("\n")
        };
        let a = run();
        assert_eq!(a, run(), "sim-clock span streams must be byte-identical");
        assert!(a.contains("\"wall_ns\":null"), "sim clock carries no wall time: {a}");
    }

    #[test]
    fn wall_clock_records_durations() {
        let sink = Arc::new(CollectingSink::new());
        let t = Tracer::with_wall_clock(Telemetry::new(sink.clone()));
        drop(t.span(stage::PERIOD));
        let spans = spans_of(&sink);
        assert!(spans[0].wall_ns.is_some(), "wall mode must stamp durations");
    }

    #[test]
    fn job_tracers_are_independent_and_laned() {
        let sink = Arc::new(CollectingSink::new());
        let t = Tracer::new(Telemetry::new(sink.clone()));
        let a = t.job(0);
        let b = t.job(1);
        drop(a.span(stage::SWEEP_JOB));
        drop(b.span(stage::SWEEP_JOB));
        let spans = spans_of(&sink);
        assert_eq!(spans.len(), 2);
        // Fresh counters per job: both spans are roots with id 1, tick 0.
        for s in &spans {
            assert_eq!(s.id, 1);
            assert_eq!(s.parent, 0);
            assert_eq!(s.start, 0);
        }
        assert_eq!(spans[0].lane, 0);
        assert_eq!(spans[1].lane, 1);
    }

    #[test]
    fn span_json_has_fixed_field_order() {
        let s = SpanEvent {
            name: stage::PERIOD,
            id: 2,
            parent: 1,
            lane: 0,
            start: 3,
            end: 8,
            time_s: Some(4.0),
            wall_ns: None,
            label: String::new(),
        };
        assert_eq!(
            s.to_json(),
            "{\"event\":\"span\",\"name\":\"period\",\"id\":2,\"parent\":1,\"lane\":0,\
             \"start\":3,\"end\":8,\"time_s\":4,\"wall_ns\":null,\"label\":null}"
        );
        assert_eq!(s.ticks(), 5);
        let labelled = SpanEvent { label: "job3".into(), wall_ns: Some(1500), ..s };
        let json = labelled.to_json();
        assert!(json.contains("\"wall_ns\":1500"));
        assert!(json.ends_with("\"label\":\"job3\"}"));
    }

    #[test]
    fn chrome_export_is_pinned_and_byte_stable() {
        let spans = vec![
            SpanEvent {
                name: stage::SESSION,
                id: 1,
                parent: 0,
                lane: 0,
                start: 0,
                end: 5,
                time_s: Some(2.0),
                wall_ns: None,
                label: String::new(),
            },
            SpanEvent {
                name: stage::PERIOD,
                id: 2,
                parent: 1,
                lane: 0,
                start: 1,
                end: 4,
                time_s: None,
                wall_ns: Some(250),
                label: "p0".into(),
            },
        ];
        let got = chrome_trace_json(&spans);
        let want = "{\"traceEvents\":[\n\
             {\"name\":\"session\",\"cat\":\"dicer\",\"ph\":\"X\",\"pid\":1,\"tid\":0,\
             \"ts\":0,\"dur\":5,\"args\":{\"id\":1,\"parent\":0,\"time_s\":2,\
             \"wall_ns\":null,\"label\":null}},\n\
             {\"name\":\"period\",\"cat\":\"dicer\",\"ph\":\"X\",\"pid\":1,\"tid\":0,\
             \"ts\":1,\"dur\":3,\"args\":{\"id\":2,\"parent\":1,\"time_s\":null,\
             \"wall_ns\":250,\"label\":\"p0\"}}\n\
             ],\"displayTimeUnit\":\"ms\"}\n";
        assert_eq!(got, want);
        assert_eq!(got, chrome_trace_json(&spans), "export must be byte-stable");
        assert!(chrome_trace_json(&[]).contains("\"traceEvents\":[\n]"));
    }
}
