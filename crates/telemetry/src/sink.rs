//! Sink trait and the basic sink implementations.
//!
//! A [`TelemetrySink`] receives every [`TelemetryEvent`] a producer emits.
//! Producers never talk to sinks directly; they hold a cheap, cloneable
//! [`Telemetry`] handle that is either *off* (the default — a no-op with
//! one branch of overhead) or wraps an `Arc<dyn TelemetrySink>`.

use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::event::TelemetryEvent;

/// Bitmask of [`TelemetryEvent`] families a sink wants delivered, one bit
/// per [`TelemetryEvent::family`] index. Routing sinks (today:
/// [`FanoutSink`]) consult it once at construction and skip uninterested
/// sinks entirely, so a narrow sink (the observability plane wants only
/// periods and controller statuses) pays no per-event dispatch for the
/// families it ignores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interests(pub u16);

impl Interests {
    /// Every family, present and future (the default).
    pub const ALL: Interests = Interests(u16::MAX);
    /// `TelemetryEvent::Period`.
    pub const PERIOD: Interests = Interests(1 << 0);
    /// `TelemetryEvent::Controller`.
    pub const CONTROLLER: Interests = Interests(1 << 1);
    /// `TelemetryEvent::ControllerStatus`.
    pub const CONTROLLER_STATUS: Interests = Interests(1 << 2);
    /// `TelemetryEvent::PartitionApplied`.
    pub const PARTITION_APPLIED: Interests = Interests(1 << 3);
    /// `TelemetryEvent::Fault`.
    pub const FAULT: Interests = Interests(1 << 4);
    /// `TelemetryEvent::Decision`.
    pub const DECISION: Interests = Interests(1 << 5);
    /// `TelemetryEvent::ScenarioSummary`.
    pub const SCENARIO_SUMMARY: Interests = Interests(1 << 6);
    /// `TelemetryEvent::Span`.
    pub const SPAN: Interests = Interests(1 << 7);

    /// Whether the family with this [`TelemetryEvent::family`] index is
    /// wanted.
    pub fn wants(self, family: usize) -> bool {
        self.0 & (1 << family) != 0
    }
}

impl std::ops::BitOr for Interests {
    type Output = Interests;
    fn bitor(self, rhs: Interests) -> Interests {
        Interests(self.0 | rhs.0)
    }
}

/// Receives telemetry events. Implementations must be cheap and must not
/// block for long: `emit` is called from simulation hot paths.
pub trait TelemetrySink: Send + Sync {
    /// Deliver one event. Borrowed so disabled/filtering sinks pay no
    /// clone; sinks that retain events clone internally.
    fn emit(&self, event: &TelemetryEvent);

    /// Which event families this sink wants. Defaults to everything;
    /// narrow sinks override so routing sinks can skip them. Must be
    /// constant for the sink's lifetime (routers read it once).
    fn interests(&self) -> Interests {
        Interests::ALL
    }
}

/// A cheap, cloneable producer handle: either disabled (default) or a
/// shared reference to a sink. Every instrumented component stores one of
/// these; the disabled path is a single `Option` branch.
#[derive(Clone, Default)]
pub struct Telemetry {
    sink: Option<Arc<dyn TelemetrySink>>,
}

impl Telemetry {
    /// The disabled handle: `emit` is a no-op.
    pub fn off() -> Self {
        Telemetry { sink: None }
    }

    /// A handle delivering to `sink`.
    pub fn new(sink: Arc<dyn TelemetrySink>) -> Self {
        Telemetry { sink: Some(sink) }
    }

    /// Whether events go anywhere. Producers can skip constructing
    /// expensive events when this is false.
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Deliver `event` to the sink, if any.
    pub fn emit(&self, event: &TelemetryEvent) {
        if let Some(sink) = &self.sink {
            sink.emit(event);
        }
    }

    /// Deliver an event built only if a sink is attached — use when
    /// constructing the event allocates.
    pub fn emit_with(&self, build: impl FnOnce() -> TelemetryEvent) {
        if let Some(sink) = &self.sink {
            sink.emit(&build());
        }
    }
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Telemetry").field("enabled", &self.enabled()).finish()
    }
}

/// Test/inspection sink: retains every event in order.
pub struct CollectingSink {
    events: Mutex<Vec<TelemetryEvent>>,
}

impl Default for CollectingSink {
    fn default() -> Self {
        Self::new()
    }
}

impl CollectingSink {
    /// An empty collector.
    pub fn new() -> Self {
        CollectingSink { events: Mutex::new(Vec::new()) }
    }

    /// Snapshot of everything emitted so far.
    pub fn events(&self) -> Vec<TelemetryEvent> {
        self.events.lock().clone()
    }

    /// Remove and return everything emitted so far.
    pub fn take(&self) -> Vec<TelemetryEvent> {
        std::mem::take(&mut *self.events.lock())
    }
}

impl TelemetrySink for CollectingSink {
    fn emit(&self, event: &TelemetryEvent) {
        self.events.lock().push(event.clone());
    }
}

/// Renders each event as one JSON line into an in-memory buffer. The
/// byte-stable JSONL encoder behind scenario traces and the
/// `dicer-sim --telemetry jsonl` flag: decision and summary events render
/// in the legacy golden format, so a trace produced through this sink is
/// byte-identical to the pre-telemetry hand-rolled writer.
pub struct JsonlSink {
    buf: Mutex<String>,
}

impl Default for JsonlSink {
    fn default() -> Self {
        Self::new()
    }
}

impl JsonlSink {
    /// An empty buffer.
    pub fn new() -> Self {
        JsonlSink { buf: Mutex::new(String::new()) }
    }

    /// Snapshot of the buffered JSONL text.
    pub fn contents(&self) -> String {
        self.buf.lock().clone()
    }

    /// Remove and return the buffered JSONL text.
    pub fn take(&self) -> String {
        std::mem::take(&mut *self.buf.lock())
    }
}

impl TelemetrySink for JsonlSink {
    fn emit(&self, event: &TelemetryEvent) {
        let line = event.to_json();
        let mut buf = self.buf.lock();
        buf.push_str(&line);
        buf.push('\n');
    }
}

/// Batches events in front of a downstream sink: `emit` only appends to
/// an in-memory buffer, and the whole batch is forwarded (in order) once
/// it reaches the configured size, on an explicit [`BufferedSink::flush`],
/// or on drop. Amortises per-event downstream cost (lock traffic,
/// formatting, I/O) on hot loops that do attach a sink; the producer-side
/// contract is unchanged — every event is delivered exactly once, in
/// emission order.
pub struct BufferedSink {
    inner: Arc<dyn TelemetrySink>,
    buf: Mutex<Vec<TelemetryEvent>>,
    batch: usize,
}

impl BufferedSink {
    /// Buffers up to `batch` events (`batch >= 1`) in front of `inner`.
    pub fn new(inner: Arc<dyn TelemetrySink>, batch: usize) -> Self {
        assert!(batch >= 1, "batch size must be at least 1");
        BufferedSink { inner, buf: Mutex::new(Vec::with_capacity(batch)), batch }
    }

    /// Events currently buffered (not yet forwarded downstream).
    pub fn pending(&self) -> usize {
        self.buf.lock().len()
    }

    /// Forwards every buffered event downstream, in emission order.
    pub fn flush(&self) {
        // Swap the batch out under the lock, deliver outside it, then put
        // the (now empty) vector back so its capacity is reused.
        let mut drained = {
            let mut buf = self.buf.lock();
            std::mem::take(&mut *buf)
        };
        for event in drained.drain(..) {
            self.inner.emit(&event);
        }
        let mut buf = self.buf.lock();
        if buf.is_empty() {
            *buf = drained;
        }
    }
}

impl TelemetrySink for BufferedSink {
    fn emit(&self, event: &TelemetryEvent) {
        let full = {
            let mut buf = self.buf.lock();
            buf.push(event.clone());
            buf.len() >= self.batch
        };
        if full {
            self.flush();
        }
    }
}

impl Drop for BufferedSink {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Delivers each event to every *interested* sink, in order. Delivery
/// lists are precomputed per event family from each sink's
/// [`TelemetrySink::interests`], so a sink never sees (or pays dispatch
/// for) a family it declared out.
pub struct FanoutSink {
    sinks: Vec<Arc<dyn TelemetrySink>>,
    /// Sink indices to deliver to, per [`TelemetryEvent::family`] index.
    routes: [Vec<usize>; 8],
}

impl FanoutSink {
    /// Fan out to `sinks` (delivery order = vector order).
    pub fn new(sinks: Vec<Arc<dyn TelemetrySink>>) -> Self {
        let mut routes: [Vec<usize>; 8] = Default::default();
        for (i, sink) in sinks.iter().enumerate() {
            let interests = sink.interests();
            for (family, route) in routes.iter_mut().enumerate() {
                if interests.wants(family) {
                    route.push(i);
                }
            }
        }
        FanoutSink { sinks, routes }
    }
}

impl TelemetrySink for FanoutSink {
    fn emit(&self, event: &TelemetryEvent) {
        for &i in &self.routes[event.family()] {
            self.sinks[i].emit(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ControllerEvent, TelemetryEvent};

    fn fault(label: &'static str) -> TelemetryEvent {
        TelemetryEvent::Fault { label }
    }

    #[test]
    fn off_handle_is_disabled_and_silent() {
        let t = Telemetry::off();
        assert!(!t.enabled());
        t.emit(&fault("sample_dropped")); // must not panic
        assert!(!format!("{t:?}").contains("true"));
    }

    #[test]
    fn collecting_sink_retains_order() {
        let sink = Arc::new(CollectingSink::new());
        let t = Telemetry::new(sink.clone());
        assert!(t.enabled());
        t.emit(&fault("a"));
        t.emit(&fault("b"));
        let events = sink.take();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0], fault("a"));
        assert_eq!(events[1], fault("b"));
        assert!(sink.events().is_empty(), "take drains");
    }

    #[test]
    fn emit_with_skips_builder_when_off() {
        let t = Telemetry::off();
        t.emit_with(|| unreachable!("builder must not run on a disabled handle"));

        let sink = Arc::new(CollectingSink::new());
        let t = Telemetry::new(sink.clone());
        t.emit_with(|| fault("built"));
        assert_eq!(sink.events().len(), 1);
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let sink = JsonlSink::new();
        sink.emit(&fault("sample_stale"));
        sink.emit(&TelemetryEvent::Controller {
            period: 1,
            event: ControllerEvent::MissingPeriod,
        });
        let text = sink.take();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], "{\"event\":\"fault\",\"kind\":\"sample_stale\"}");
        assert!(text.ends_with('\n'));
        assert!(sink.contents().is_empty());
    }

    #[test]
    fn buffered_sink_batches_and_preserves_order() {
        let inner = Arc::new(CollectingSink::new());
        let buffered = BufferedSink::new(inner.clone(), 3);
        buffered.emit(&fault("a"));
        buffered.emit(&fault("b"));
        assert_eq!(inner.events().len(), 0, "below the batch size nothing is forwarded");
        assert_eq!(buffered.pending(), 2);
        buffered.emit(&fault("c"));
        assert_eq!(inner.events().len(), 3, "reaching the batch size flushes");
        assert_eq!(buffered.pending(), 0);
        assert_eq!(inner.events(), vec![fault("a"), fault("b"), fault("c")]);
    }

    #[test]
    fn buffered_sink_explicit_flush_and_drop_deliver_the_tail() {
        let inner = Arc::new(CollectingSink::new());
        let buffered = BufferedSink::new(inner.clone(), 100);
        buffered.emit(&fault("x"));
        buffered.flush();
        assert_eq!(inner.events().len(), 1, "explicit flush forwards a partial batch");
        buffered.emit(&fault("y"));
        drop(buffered);
        assert_eq!(inner.events(), vec![fault("x"), fault("y")], "drop flushes the tail");
    }

    #[test]
    fn fanout_delivers_to_all_sinks_in_order() {
        let a = Arc::new(CollectingSink::new());
        let b = Arc::new(CollectingSink::new());
        let fan = FanoutSink::new(vec![a.clone(), b.clone()]);
        let t = Telemetry::new(Arc::new(fan));
        t.emit(&fault("x"));
        assert_eq!(a.events().len(), 1);
        assert_eq!(b.events().len(), 1);
    }

    /// Collector that only wants fault events.
    struct FaultOnly(CollectingSink);

    impl TelemetrySink for FaultOnly {
        fn emit(&self, event: &TelemetryEvent) {
            self.0.emit(event);
        }
        fn interests(&self) -> Interests {
            Interests::FAULT
        }
    }

    #[test]
    fn fanout_routes_by_declared_interests() {
        let narrow = Arc::new(FaultOnly(CollectingSink::new()));
        let wide = Arc::new(CollectingSink::new());
        let fan = FanoutSink::new(vec![narrow.clone(), wide.clone()]);
        fan.emit(&fault("seen"));
        fan.emit(&TelemetryEvent::Controller {
            period: 0,
            event: ControllerEvent::MissingPeriod,
        });
        assert_eq!(narrow.0.events().len(), 1, "non-fault families skip the narrow sink");
        assert_eq!(wide.events().len(), 2, "default interests receive everything");
    }

    #[test]
    fn interests_bits_align_with_event_families() {
        for (interest, family) in [
            (Interests::PERIOD, 0),
            (Interests::CONTROLLER, 1),
            (Interests::CONTROLLER_STATUS, 2),
            (Interests::PARTITION_APPLIED, 3),
            (Interests::FAULT, 4),
            (Interests::DECISION, 5),
            (Interests::SCENARIO_SUMMARY, 6),
            (Interests::SPAN, 7),
        ] {
            assert!(interest.wants(family));
            assert!(!interest.wants((family + 1) % 8));
            assert!(Interests::ALL.wants(family));
        }
        let both = Interests::PERIOD | Interests::SPAN;
        assert!(both.wants(0) && both.wants(7) && !both.wants(4));
    }
}
