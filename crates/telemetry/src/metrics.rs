//! Metrics registry with deterministic Prometheus text exposition.
//!
//! Register once, record forever: [`MetricsRegistry::counter`] /
//! [`gauge`](MetricsRegistry::gauge) / [`histogram`](MetricsRegistry::histogram)
//! return cheap `Arc`-backed handles whose record paths are single atomic
//! operations (a bounds scan for histograms) — no locking, no allocation.
//! [`MetricsRegistry::render`] produces Prometheus text format 0.0.4 with
//! a fully deterministic layout: metric families sorted by name, label
//! sets sorted by key, one `# HELP`/`# TYPE` header per family.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// Monotone counter handle.
#[derive(Clone)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// Add 1.
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Gauge handle (an `f64` stored as bits in an atomic).
#[derive(Clone)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    /// Set the gauge. Non-finite values (NaN, ±Inf) are dropped: the
    /// gauge keeps its last finite value, so one bad sample can never
    /// poison the exposition or any downstream series store.
    pub fn set(&self, v: f64) {
        if !v.is_finite() {
            return;
        }
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

struct HistogramCore {
    /// Upper bounds of the finite buckets, strictly increasing. The
    /// implicit `+Inf` bucket is `count`.
    bounds: Vec<f64>,
    /// Per-bucket observation counts (not cumulative; cumulated at render).
    buckets: Vec<AtomicU64>,
    /// Sum of observations, as f64 bits, updated by CAS.
    sum_bits: AtomicU64,
    /// Total observations.
    count: AtomicU64,
}

/// Fixed-bucket histogram handle.
#[derive(Clone)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

impl Histogram {
    /// Record one observation: one atomic per-bucket increment, one CAS
    /// loop for the sum, one count increment. No locks, no allocation.
    ///
    /// Non-finite observations (NaN, ±Inf) are dropped whole: a NaN
    /// would otherwise poison `sum` forever through the CAS loop, and
    /// ±Inf would land in the implicit overflow bucket while making
    /// `sum` meaningless. Dropping the entire observation (bucket,
    /// sum *and* count) keeps the invariant `sum/count = mean of what
    /// was recorded` and is deterministic: the same stream always
    /// yields the same exposition.
    pub fn observe(&self, v: f64) {
        if !v.is_finite() {
            return;
        }
        let core = &self.core;
        if let Some(i) = core.bounds.iter().position(|&b| v <= b) {
            core.buckets[i].fetch_add(1, Ordering::Relaxed);
        }
        let mut old = core.sum_bits.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(old) + v).to_bits();
            match core.sum_bits.compare_exchange_weak(
                old,
                new,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => old = actual,
            }
        }
        core.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.core.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.core.sum_bits.load(Ordering::Relaxed))
    }
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn type_str(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

struct Family {
    help: String,
    series: BTreeMap<Vec<(String, String)>, Metric>,
}

/// A lock-free read handle on one scalar series (counter or gauge), as
/// enumerated by [`MetricsRegistry::scalars`]. Cloning shares the
/// underlying atomic, so a scraper can cache these and read them later
/// without touching the registry lock.
#[derive(Clone)]
pub enum Scalar {
    /// A counter series; reads as the running total.
    Counter(Counter),
    /// A gauge series; reads as the last finite value set.
    Gauge(Gauge),
}

impl Scalar {
    /// Current value of the series (counters widen to `f64`).
    pub fn value(&self) -> f64 {
        match self {
            Scalar::Counter(c) => c.get() as f64,
            Scalar::Gauge(g) => g.get(),
        }
    }
}

/// Registry of metric families. Registration takes a short lock; the
/// returned handles are lock-free. Re-registering the same name + label
/// set returns a handle to the existing series, so components can look up
/// their metrics idempotently.
pub struct MetricsRegistry {
    families: Mutex<BTreeMap<String, Family>>,
    /// Bumped whenever a *new* series is inserted (idempotent
    /// re-registration does not count). Scrapers cache the scalar
    /// handle list and refresh it only when this changes.
    generation: AtomicU64,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

fn sorted_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> =
        labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
    out.sort();
    out
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry { families: Mutex::new(BTreeMap::new()), generation: AtomicU64::new(0) }
    }

    /// Registration epoch: bumped once per newly inserted series. A
    /// scraper holding cached [`Scalar`] handles re-enumerates only when
    /// this value changes, making a steady-state scrape a handful of
    /// relaxed atomic loads.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// Register (or look up) a counter series.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        let handle = Counter { value: Arc::new(AtomicU64::new(0)) };
        let mut families = self.families.lock();
        let fam = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            series: BTreeMap::new(),
        });
        let mut inserted = false;
        let got = match fam.series.entry(sorted_labels(labels)).or_insert_with(|| {
            inserted = true;
            Metric::Counter(handle.clone())
        }) {
            Metric::Counter(c) => c.clone(),
            other => panic!(
                "metric {name} already registered as {}, requested counter",
                other.type_str()
            ),
        };
        if inserted {
            self.generation.fetch_add(1, Ordering::Relaxed);
        }
        got
    }

    /// Register (or look up) a gauge series.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        let handle = Gauge { bits: Arc::new(AtomicU64::new(0f64.to_bits())) };
        let mut families = self.families.lock();
        let fam = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            series: BTreeMap::new(),
        });
        let mut inserted = false;
        let got = match fam.series.entry(sorted_labels(labels)).or_insert_with(|| {
            inserted = true;
            Metric::Gauge(handle.clone())
        }) {
            Metric::Gauge(g) => g.clone(),
            other => panic!(
                "metric {name} already registered as {}, requested gauge",
                other.type_str()
            ),
        };
        if inserted {
            self.generation.fetch_add(1, Ordering::Relaxed);
        }
        got
    }

    /// Register (or look up) a histogram series with the given finite
    /// bucket upper bounds (must be strictly increasing; `+Inf` implicit).
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Histogram {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let handle = Histogram {
            core: Arc::new(HistogramCore {
                bounds: bounds.to_vec(),
                buckets: bounds.iter().map(|_| AtomicU64::new(0)).collect(),
                sum_bits: AtomicU64::new(0f64.to_bits()),
                count: AtomicU64::new(0),
            }),
        };
        let mut families = self.families.lock();
        let fam = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            series: BTreeMap::new(),
        });
        let mut inserted = false;
        let got = match fam.series.entry(sorted_labels(labels)).or_insert_with(|| {
            inserted = true;
            Metric::Histogram(handle.clone())
        }) {
            Metric::Histogram(h) => h.clone(),
            other => panic!(
                "metric {name} already registered as {}, requested histogram",
                other.type_str()
            ),
        };
        if inserted {
            self.generation.fetch_add(1, Ordering::Relaxed);
        }
        got
    }

    /// Enumerate every scalar series (counters and gauges; histograms are
    /// exposed through their own `_sum`/`_count` exposition and skipped
    /// here) as `(rendered name, read handle)` pairs in deterministic
    /// order: families by name, series by sorted label set. The rendered
    /// name carries the labels exactly as `render` would print them
    /// (`dicer_node_severity{node="3"}`), so a series store keyed on
    /// these names matches the `/metrics` exposition one-to-one.
    pub fn scalars(&self) -> Vec<(String, Scalar)> {
        let families = self.families.lock();
        let mut out = Vec::new();
        for (name, fam) in families.iter() {
            for (labels, metric) in fam.series.iter() {
                let handle = match metric {
                    Metric::Counter(c) => Scalar::Counter(c.clone()),
                    Metric::Gauge(g) => Scalar::Gauge(g.clone()),
                    Metric::Histogram(_) => continue,
                };
                out.push((format!("{}{}", name, render_labels(labels, &[])), handle));
            }
        }
        out
    }

    /// Prometheus text exposition format 0.0.4. Deterministic: families in
    /// name order, series in sorted-label order, `le` labels rendered via
    /// shortest-roundtrip `Display`.
    pub fn render(&self) -> String {
        let families = self.families.lock();
        let mut out = String::new();
        for (name, fam) in families.iter() {
            let ty = fam
                .series
                .values()
                .next()
                .map(Metric::type_str)
                .unwrap_or("untyped");
            let _ = writeln!(out, "# HELP {name} {}", fam.help);
            let _ = writeln!(out, "# TYPE {name} {ty}");
            for (labels, metric) in fam.series.iter() {
                match metric {
                    Metric::Counter(c) => {
                        let _ = writeln!(out, "{}{} {}", name, render_labels(labels, &[]), c.get());
                    }
                    Metric::Gauge(g) => {
                        let _ = writeln!(out, "{}{} {}", name, render_labels(labels, &[]), g.get());
                    }
                    Metric::Histogram(h) => {
                        let core = &h.core;
                        let mut cum = 0u64;
                        for (i, b) in core.bounds.iter().enumerate() {
                            cum += core.buckets[i].load(Ordering::Relaxed);
                            let le = format!("{b}");
                            let _ = writeln!(
                                out,
                                "{}_bucket{} {}",
                                name,
                                render_labels(labels, &[("le", &le)]),
                                cum
                            );
                        }
                        let total = core.count.load(Ordering::Relaxed);
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {}",
                            name,
                            render_labels(labels, &[("le", "+Inf")]),
                            total
                        );
                        let _ = writeln!(
                            out,
                            "{}_sum{} {}",
                            name,
                            render_labels(labels, &[]),
                            h.sum()
                        );
                        let _ = writeln!(
                            out,
                            "{}_count{} {}",
                            name,
                            render_labels(labels, &[]),
                            total
                        );
                    }
                }
            }
        }
        out
    }
}

fn render_labels(labels: &[(String, String)], extra: &[(&str, &str)]) -> String {
    if labels.is_empty() && extra.is_empty() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    parts.extend(extra.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label(v))));
    format!("{{{}}}", parts.join(","))
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("dicer_test_total", "Test counter.", &[]);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = reg.gauge("dicer_test_ways", "Test gauge.", &[]);
        g.set(17.0);
        assert_eq!(g.get(), 17.0);
    }

    #[test]
    fn reregistering_returns_the_same_series() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("dicer_x_total", "X.", &[("policy", "dicer")]);
        let b = reg.counter("dicer_x_total", "X.", &[("policy", "dicer")]);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2, "both handles hit one series");
    }

    #[test]
    fn histogram_buckets_cumulate_at_render() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("dicer_ipc", "HP IPC.", &[], &[0.5, 1.0, 2.0]);
        for v in [0.2, 0.7, 0.9, 1.5, 9.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 12.3).abs() < 1e-9);
        let text = reg.render();
        assert!(text.contains("dicer_ipc_bucket{le=\"0.5\"} 1"));
        assert!(text.contains("dicer_ipc_bucket{le=\"1\"} 3"));
        assert!(text.contains("dicer_ipc_bucket{le=\"2\"} 4"));
        assert!(text.contains("dicer_ipc_bucket{le=\"+Inf\"} 5"));
        assert!(text.contains("dicer_ipc_count 5"));
    }

    #[test]
    fn render_is_deterministic_and_sorted() {
        let build = || {
            let reg = MetricsRegistry::new();
            // Register in shuffled order with shuffled label order.
            reg.counter("dicer_b_total", "B.", &[("z", "1"), ("a", "2")]).inc();
            reg.gauge("dicer_a_ways", "A.", &[]).set(3.0);
            reg.counter("dicer_b_total", "B.", &[("a", "1"), ("z", "1")]).add(2);
            reg.render()
        };
        let text = build();
        assert_eq!(text, build(), "same registrations render identically");
        let a_pos = text.find("dicer_a_ways").unwrap();
        let b_pos = text.find("dicer_b_total").unwrap();
        assert!(a_pos < b_pos, "families sorted by name");
        // Labels sorted by key regardless of registration order.
        assert!(text.contains("dicer_b_total{a=\"2\",z=\"1\"} 1"));
        assert!(text.contains("dicer_b_total{a=\"1\",z=\"1\"} 2"));
        // One header pair per family.
        assert_eq!(text.matches("# TYPE dicer_b_total").count(), 1);
    }

    #[test]
    fn label_values_are_escaped() {
        let reg = MetricsRegistry::new();
        reg.gauge("dicer_esc", "Esc.", &[("w", "a\"b\\c")]).set(1.0);
        assert!(reg.render().contains("w=\"a\\\"b\\\\c\""));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn type_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("dicer_clash", "C.", &[]);
        reg.gauge("dicer_clash", "C.", &[]);
    }

    #[test]
    fn non_finite_observations_are_dropped_whole() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("dicer_nf", "NF.", &[], &[1.0, 10.0]);
        h.observe(0.5);
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        h.observe(f64::NEG_INFINITY);
        h.observe(2.0);
        // Only the two finite observations exist: bucket, sum AND count.
        assert_eq!(h.count(), 2, "non-finite must not bump count");
        assert_eq!(h.sum(), 2.5, "non-finite must not touch sum");
        let text = reg.render();
        assert!(text.contains("dicer_nf_bucket{le=\"1\"} 1"));
        assert!(text.contains("dicer_nf_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("dicer_nf_sum 2.5"));
        // The same stream replayed renders identically (deterministic).
        let reg2 = MetricsRegistry::new();
        let h2 = reg2.histogram("dicer_nf", "NF.", &[], &[1.0, 10.0]);
        for v in [0.5, f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 2.0] {
            h2.observe(v);
        }
        assert_eq!(text, reg2.render());
    }

    #[test]
    fn gauge_keeps_last_finite_value_on_non_finite_set() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("dicer_nf_ways", "NF.", &[]);
        g.set(7.0);
        g.set(f64::NAN);
        assert_eq!(g.get(), 7.0, "NaN set is dropped");
        g.set(f64::INFINITY);
        assert_eq!(g.get(), 7.0, "+Inf set is dropped");
        g.set(f64::NEG_INFINITY);
        assert_eq!(g.get(), 7.0, "-Inf set is dropped");
        g.set(3.0);
        assert_eq!(g.get(), 3.0, "finite sets still land");
    }

    #[test]
    fn generation_counts_new_series_only() {
        let reg = MetricsRegistry::new();
        assert_eq!(reg.generation(), 0);
        reg.counter("dicer_g_total", "G.", &[]);
        assert_eq!(reg.generation(), 1);
        reg.counter("dicer_g_total", "G.", &[]); // idempotent lookup
        assert_eq!(reg.generation(), 1, "re-registration is not a new series");
        reg.gauge("dicer_g_ways", "G.", &[("node", "0")]);
        reg.histogram("dicer_g_lat", "G.", &[], &[1.0]);
        assert_eq!(reg.generation(), 3);
    }

    #[test]
    fn scalars_enumerates_counters_and_gauges_with_rendered_names() {
        let reg = MetricsRegistry::new();
        reg.counter("dicer_s_total", "S.", &[]).add(4);
        reg.gauge("dicer_s_sev", "S.", &[("node", "1")]).set(2.0);
        reg.gauge("dicer_s_sev", "S.", &[("node", "0")]).set(1.0);
        reg.histogram("dicer_s_lat", "S.", &[], &[1.0]).observe(0.5);
        let scalars = reg.scalars();
        let names: Vec<&str> = scalars.iter().map(|(n, _)| n.as_str()).collect();
        // Histograms skipped; deterministic family/label order.
        assert_eq!(
            names,
            vec![
                "dicer_s_sev{node=\"0\"}",
                "dicer_s_sev{node=\"1\"}",
                "dicer_s_total",
            ]
        );
        let values: Vec<f64> = scalars.iter().map(|(_, s)| s.value()).collect();
        assert_eq!(values, vec![1.0, 2.0, 4.0]);
        // Handles stay live: later recording is visible without re-enumeration.
        reg.counter("dicer_s_total", "S.", &[]).add(1);
        assert_eq!(scalars[2].1.value(), 5.0);
    }
}
