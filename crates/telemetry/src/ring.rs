//! Bounded ring-buffer event recorder.
//!
//! [`RingRecorder`] keeps the last `capacity` events. Writers claim a
//! monotonically increasing sequence number with one atomic fetch-add and
//! then lock only the slot they land on, so concurrent producers contend
//! only when they hash to the same slot. When the ring is full the oldest
//! event is overwritten (drop-oldest) and a dropped-events counter is
//! bumped. Draining the ring consumes the retained events and resets that
//! counter — once a reader has caught up, earlier losses are observed
//! history, not pending ones — while [`RingRecorder::total_dropped`] keeps
//! the monotone lifetime tally.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::event::TelemetryEvent;
use crate::sink::TelemetrySink;

/// Bounded, drop-oldest event recorder. Implements [`TelemetrySink`]; the
/// daemon drains it to answer `/events` queries.
pub struct RingRecorder {
    slots: Vec<Mutex<Option<(u64, TelemetryEvent)>>>,
    /// Next sequence number to assign (== total events ever emitted).
    head: AtomicU64,
    /// Events overwritten since the last `drain`.
    dropped: AtomicU64,
    /// Events overwritten over the recorder's lifetime (never resets).
    dropped_total: AtomicU64,
}

impl RingRecorder {
    /// A recorder holding the most recent `capacity` events
    /// (`capacity >= 1`).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "ring capacity must be at least 1");
        RingRecorder {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            head: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            dropped_total: AtomicU64::new(0),
        }
    }

    /// Slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever emitted to this recorder.
    pub fn total_emitted(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Events lost to overwrites since the last [`RingRecorder::drain`]
    /// (a drain acknowledges prior losses and resets this to zero).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Events lost to overwrites over the recorder's whole lifetime.
    /// Monotone; unaffected by draining.
    pub fn total_dropped(&self) -> u64 {
        self.dropped_total.load(Ordering::Relaxed)
    }

    /// The most recent `n` retained events, oldest first. Non-destructive:
    /// events stay in the ring (and can still age out later).
    pub fn recent(&self, n: usize) -> Vec<TelemetryEvent> {
        let mut entries: Vec<(u64, TelemetryEvent)> =
            self.slots.iter().filter_map(|s| s.lock().clone()).collect();
        entries.sort_unstable_by_key(|(seq, _)| *seq);
        if entries.len() > n {
            entries.drain(..entries.len() - n);
        }
        entries.into_iter().map(|(_, ev)| ev).collect()
    }

    /// The cursor one past the newest event emitted so far. A reader that
    /// starts here sees only events emitted after the call.
    pub fn cursor_now(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Non-destructive cursor read: every retained event with sequence
    /// `>= cursor`, oldest first, capped at `max`. Returns
    /// `(events, next_cursor, skipped)` where `next_cursor` resumes the
    /// read after the last returned event and `skipped` counts events in
    /// `[cursor, ..)` that were already overwritten — a slow reader loses
    /// the oldest events (drop-oldest) and learns how many, instead of
    /// ever blocking a producer.
    pub fn read_since(&self, cursor: u64, max: usize) -> (Vec<TelemetryEvent>, u64, u64) {
        let head = self.head.load(Ordering::Relaxed);
        let mut entries: Vec<(u64, TelemetryEvent)> = self
            .slots
            .iter()
            .filter_map(|s| s.lock().clone())
            .filter(|(seq, _)| *seq >= cursor)
            .collect();
        entries.sort_unstable_by_key(|(seq, _)| *seq);
        // Anything between `cursor` and the first retained sequence was
        // overwritten before this reader got to it.
        let skipped = match entries.first() {
            Some((first, _)) => first.saturating_sub(cursor),
            None => head.saturating_sub(cursor),
        };
        if entries.len() > max {
            entries.truncate(max);
        }
        let next = entries.last().map(|(seq, _)| seq + 1).unwrap_or_else(|| head.max(cursor));
        (entries.into_iter().map(|(_, ev)| ev).collect(), next, skipped)
    }

    /// Remove and return every retained event, oldest first, and reset
    /// the [`RingRecorder::dropped`] counter: a drain is a reader catching
    /// up, so earlier overwrites become observed history rather than
    /// pending loss. The lifetime tally stays in
    /// [`RingRecorder::total_dropped`].
    pub fn drain(&self) -> Vec<TelemetryEvent> {
        let mut entries: Vec<(u64, TelemetryEvent)> =
            self.slots.iter().filter_map(|s| s.lock().take()).collect();
        entries.sort_unstable_by_key(|(seq, _)| *seq);
        self.dropped.store(0, Ordering::Relaxed);
        entries.into_iter().map(|(_, ev)| ev).collect()
    }
}

impl TelemetrySink for RingRecorder {
    fn emit(&self, event: &TelemetryEvent) {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let idx = (seq % self.slots.len() as u64) as usize;
        let mut slot = self.slots[idx].lock();
        if slot.is_some() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            self.dropped_total.fetch_add(1, Ordering::Relaxed);
        }
        *slot = Some((seq, event.clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn fault(label: &'static str) -> TelemetryEvent {
        TelemetryEvent::Fault { label }
    }

    fn numbered(n: u64) -> TelemetryEvent {
        TelemetryEvent::Controller {
            period: n,
            event: crate::event::ControllerEvent::MissingPeriod,
        }
    }

    fn period_of(ev: &TelemetryEvent) -> u64 {
        match ev {
            TelemetryEvent::Controller { period, .. } => *period,
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn retains_everything_under_capacity() {
        let ring = RingRecorder::new(8);
        for i in 0..5 {
            ring.emit(&numbered(i));
        }
        assert_eq!(ring.total_emitted(), 5);
        assert_eq!(ring.dropped(), 0);
        let got: Vec<u64> = ring.recent(100).iter().map(period_of).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn wraps_around_dropping_oldest_in_order() {
        let ring = RingRecorder::new(4);
        for i in 0..10 {
            ring.emit(&numbered(i));
        }
        // 10 emitted into 4 slots: 6 overwritten, the newest 4 retained,
        // still in emission order.
        assert_eq!(ring.total_emitted(), 10);
        assert_eq!(ring.dropped(), 6);
        let got: Vec<u64> = ring.recent(100).iter().map(period_of).collect();
        assert_eq!(got, vec![6, 7, 8, 9]);
    }

    #[test]
    fn recent_limits_to_newest_n_without_draining() {
        let ring = RingRecorder::new(8);
        for i in 0..6 {
            ring.emit(&numbered(i));
        }
        let got: Vec<u64> = ring.recent(2).iter().map(period_of).collect();
        assert_eq!(got, vec![4, 5]);
        // Non-destructive: a second read sees the same history.
        assert_eq!(ring.recent(100).len(), 6);
    }

    #[test]
    fn drain_empties_the_ring_and_resets_drop_accounting() {
        let ring = RingRecorder::new(4);
        for i in 0..6 {
            ring.emit(&numbered(i));
        }
        assert_eq!(ring.dropped(), 2);
        let drained: Vec<u64> = ring.drain().iter().map(period_of).collect();
        assert_eq!(drained, vec![2, 3, 4, 5]);
        assert_eq!(ring.dropped(), 0, "drain acknowledges prior losses");
        assert_eq!(ring.total_dropped(), 2, "lifetime tally survives the drain");
        assert!(ring.drain().is_empty());
        // Drained slots are free again: the next capacity-many emits
        // overwrite nothing.
        for i in 6..10 {
            ring.emit(&numbered(i));
        }
        assert_eq!(ring.dropped(), 0, "no new drops after a full drain");
        // One more wraps: the since-drain counter starts again from zero.
        ring.emit(&numbered(10));
        assert_eq!(ring.dropped(), 1);
        assert_eq!(ring.total_dropped(), 3);
    }

    #[test]
    fn dropped_counter_is_exact_across_many_wraps() {
        let ring = RingRecorder::new(3);
        for i in 0..100 {
            ring.emit(&numbered(i));
        }
        assert_eq!(ring.total_emitted(), 100);
        assert_eq!(ring.dropped(), 97);
        assert_eq!(ring.recent(100).len(), 3);
    }

    #[test]
    fn capacity_one_keeps_only_the_newest() {
        let ring = RingRecorder::new(1);
        ring.emit(&fault("a"));
        ring.emit(&fault("b"));
        assert_eq!(ring.dropped(), 1);
        assert_eq!(ring.recent(10), vec![fault("b")]);
    }

    #[test]
    fn cursor_reads_resume_exactly_where_they_left_off() {
        let ring = RingRecorder::new(8);
        let start = ring.cursor_now();
        assert_eq!(start, 0);
        for i in 0..5 {
            ring.emit(&numbered(i));
        }
        let (evs, next, skipped) = ring.read_since(start, 100);
        assert_eq!(evs.iter().map(period_of).collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
        assert_eq!((next, skipped), (5, 0));
        // Nothing new yet: empty read, cursor unchanged.
        let (evs, next2, skipped) = ring.read_since(next, 100);
        assert!(evs.is_empty());
        assert_eq!((next2, skipped), (5, 0));
        // More events arrive; the resumed cursor sees exactly those.
        for i in 5..8 {
            ring.emit(&numbered(i));
        }
        let (evs, next3, skipped) = ring.read_since(next2, 100);
        assert_eq!(evs.iter().map(period_of).collect::<Vec<_>>(), vec![5, 6, 7]);
        assert_eq!((next3, skipped), (8, 0));
        // Non-destructive: the ring still drains in full.
        assert_eq!(ring.drain().len(), 8);
    }

    #[test]
    fn cursor_read_caps_at_max_and_next_resumes_midstream() {
        let ring = RingRecorder::new(16);
        for i in 0..10 {
            ring.emit(&numbered(i));
        }
        let (evs, next, skipped) = ring.read_since(0, 4);
        assert_eq!(evs.iter().map(period_of).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        assert_eq!((next, skipped), (4, 0));
        let (evs, next, _) = ring.read_since(next, 4);
        assert_eq!(evs.iter().map(period_of).collect::<Vec<_>>(), vec![4, 5, 6, 7]);
        assert_eq!(next, 8);
    }

    #[test]
    fn slow_cursor_reader_skips_overwritten_events_and_says_how_many() {
        let ring = RingRecorder::new(4);
        for i in 0..10 {
            ring.emit(&numbered(i));
        }
        // Events 0..6 were overwritten; a reader from 0 gets the retained
        // tail plus an exact skip count.
        let (evs, next, skipped) = ring.read_since(0, 100);
        assert_eq!(evs.iter().map(period_of).collect::<Vec<_>>(), vec![6, 7, 8, 9]);
        assert_eq!((next, skipped), (10, 6));
        // A cursor entirely below the retained window, with nothing
        // retained above it after a drain, reports everything skipped.
        ring.drain();
        let (evs, next, skipped) = ring.read_since(2, 100);
        assert!(evs.is_empty());
        assert_eq!((next, skipped), (10, 8));
        // A nonsense future cursor is clamped harmlessly.
        let (evs, next, skipped) = ring.read_since(99, 100);
        assert!(evs.is_empty());
        assert_eq!((next, skipped), (99, 0));
    }

    #[test]
    fn read_since_on_an_empty_ring_is_a_clean_no_op() {
        let ring = RingRecorder::new(4);
        assert_eq!(ring.cursor_now(), 0);
        let (evs, next, skipped) = ring.read_since(0, 100);
        assert!(evs.is_empty());
        assert_eq!((next, skipped), (0, 0), "nothing emitted: nothing read, nothing skipped");
        // max = 0 on an empty ring is equally harmless.
        let (evs, next, skipped) = ring.read_since(0, 0);
        assert!(evs.is_empty());
        assert_eq!((next, skipped), (0, 0));
    }

    #[test]
    fn exactly_lapped_cursor_resumes_at_the_oldest_live_slot() {
        let ring = RingRecorder::new(4);
        for i in 0..4 {
            ring.emit(&numbered(i));
        }
        let cursor = 0;
        // Writer laps the cursor by exactly one capacity: events 0..4 are
        // overwritten by 4..8, so the reader from 0 skips exactly 4 and
        // resumes at the oldest live slot (sequence 4).
        for i in 4..8 {
            ring.emit(&numbered(i));
        }
        let (evs, next, skipped) = ring.read_since(cursor, 100);
        assert_eq!(evs.iter().map(period_of).collect::<Vec<_>>(), vec![4, 5, 6, 7]);
        assert_eq!(skipped, 4, "exact lap: exactly capacity events lost");
        assert_eq!(next, 8);
        // Resuming from `next` after the lap reads cleanly again.
        ring.emit(&numbered(8));
        let (evs, next, skipped) = ring.read_since(next, 100);
        assert_eq!(evs.iter().map(period_of).collect::<Vec<_>>(), vec![8]);
        assert_eq!((next, skipped), (9, 0));
    }

    #[test]
    fn multi_lap_skip_count_is_exact_and_resumes_at_oldest_live() {
        let ring = RingRecorder::new(4);
        let cursor = ring.cursor_now();
        // 11 laps plus a partial: 47 events into 4 slots. The oldest live
        // sequence is 43, so a reader from 0 must report exactly 43
        // skipped — not a multiple-of-capacity approximation.
        for i in 0..47 {
            ring.emit(&numbered(i));
        }
        let (evs, next, skipped) = ring.read_since(cursor, 100);
        assert_eq!(evs.iter().map(period_of).collect::<Vec<_>>(), vec![43, 44, 45, 46]);
        assert_eq!(skipped, 43);
        assert_eq!(next, 47);
        // A cursor strictly inside the lost region skips only what is
        // ahead of it, not the whole loss.
        let (evs, _, skipped) = ring.read_since(40, 100);
        assert_eq!(evs.len(), 4);
        assert_eq!(skipped, 3, "40, 41, 42 were overwritten; 43.. are live");
        // A capped multi-lap read still reports the full skip: `skipped`
        // counts overwrites, `max` only truncates the live tail.
        let (evs, next, skipped) = ring.read_since(cursor, 2);
        assert_eq!(evs.iter().map(period_of).collect::<Vec<_>>(), vec![43, 44]);
        assert_eq!((next, skipped), (45, 43));
    }

    #[test]
    fn concurrent_producers_and_drainer_lose_nothing_unaccounted() {
        // Smoke test: N producer threads race a drainer; at the end every
        // emitted event is either drained, still retained, or counted as
        // dropped — no silent loss.
        const PRODUCERS: u64 = 4;
        const PER_PRODUCER: u64 = 500;
        let ring = Arc::new(RingRecorder::new(64));
        let drained = Arc::new(Mutex::new(0u64));

        let mut handles = Vec::new();
        for p in 0..PRODUCERS {
            let ring = ring.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..PER_PRODUCER {
                    ring.emit(&numbered(p * PER_PRODUCER + i));
                }
            }));
        }
        {
            let ring = ring.clone();
            let drained = drained.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    let got = ring.drain().len() as u64;
                    *drained.lock() += got;
                    std::thread::yield_now();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }

        let total = ring.total_emitted();
        assert_eq!(total, PRODUCERS * PER_PRODUCER);
        let remaining = ring.drain().len() as u64;
        // `dropped()` resets at each drain, so reconcile against the
        // monotone lifetime tally.
        let accounted = *drained.lock() + remaining + ring.total_dropped();
        assert_eq!(accounted, total, "every event drained, retained, or counted dropped");
    }
}
