//! Telemetry subsystem for the DICER reproduction: a structured event bus,
//! pluggable sinks, and a metrics registry with Prometheus exposition.
//!
//! Three pieces:
//!
//! * **Events** ([`event`]) — [`TelemetryEvent`] covers the whole stack:
//!   server period samples, every DICER state transition, partition
//!   applies, fault injections, and the scenario-trace record/summary
//!   lines whose byte format the golden files under `results/robustness/`
//!   pin down.
//! * **Sinks** ([`sink`], [`ring`]) — producers hold a cloneable
//!   [`Telemetry`] handle (off by default, one branch of overhead) that
//!   forwards to a [`TelemetrySink`]: an in-memory [`CollectingSink`], a
//!   byte-stable [`JsonlSink`], a bounded drop-oldest [`RingRecorder`],
//!   or a [`FanoutSink`] combining several.
//! * **Metrics** ([`metrics`]) — [`MetricsRegistry`] hands out lock-free
//!   [`Counter`]/[`Gauge`]/[`Histogram`] handles and renders deterministic
//!   Prometheus text format for the `dicerd` daemon's `/metrics` endpoint.
//! * **Tracing** ([`trace`]) — hierarchical [`SpanEvent`] self-profiling:
//!   a [`Tracer`] opens session → period → stage spans that flow over the
//!   same sinks as [`TelemetryEvent::Span`], with deterministic logical
//!   timing (golden-safe) and opt-in wall-clock timing, plus a Chrome
//!   trace-event JSON exporter for Perfetto.
//!
//! This crate is a workspace leaf: it depends on nothing above the
//! platform layer, so `dicer-rdt`, `dicer-policy`, `dicer-server`, and
//! `dicer-experiments` can all emit into it without cycles. The mirror
//! counter structs ([`ControllerCounters`], [`FaultCounters`]) exist here
//! for that reason — the `From` conversions from the upstream types live
//! in the crates that own those types.

pub mod event;
pub mod metrics;
pub mod ring;
pub mod sink;
pub mod trace;

pub use event::{
    json_f64, json_opt_f64, json_str, ControllerCounters, ControllerEvent, DecisionEvent,
    FaultCounters, HoldReason, PeriodEvent, ResetCause, ScenarioSummaryEvent, TelemetryEvent,
};
pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry, Scalar};
pub use ring::RingRecorder;
pub use sink::{
    BufferedSink, CollectingSink, FanoutSink, Interests, JsonlSink, Telemetry, TelemetrySink,
};
pub use trace::{
    chrome_trace_json, stage, ChromeTraceBuilder, SpanEvent, SpanGuard, Tracer,
    STAGE_SECONDS_BOUNDS,
};
