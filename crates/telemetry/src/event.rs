//! The structured event vocabulary of the telemetry bus.
//!
//! Every observable moment in a DICER run — a monitoring period elapsing,
//! a controller state transition, a partition apply landing, a fault being
//! injected — is one [`TelemetryEvent`]. Producers construct events on the
//! stack (every variant is allocation-free except the scenario-trace
//! variants, which are off the hot path) and hand them to a
//! [`crate::TelemetrySink`] by reference.
//!
//! Events render to JSON through [`TelemetryEvent::to_json`]. The encoding
//! is hand-rolled on purpose: golden-trace byte-identity must depend only
//! on this crate and the stability of `f64`'s shortest-roundtrip
//! `Display`, not on a serde backend's formatting choices (DESIGN.md §9).

/// Cumulative DICER decision counters, mirrored from
/// `dicer_policy::DicerStats` (the `From` impl lives in `dicer-policy`;
/// this crate sits below the policy layer).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ControllerCounters {
    /// Periods spent sampling.
    pub sampling_periods: u64,
    /// One-way shrink steps taken.
    pub shrinks: u64,
    /// Resets triggered (either path).
    pub resets: u64,
    /// Phase changes detected (Eq. 2).
    pub phase_changes: u64,
    /// Periods in which saturation was observed.
    pub saturated_periods: u64,
    /// Periods whose monitoring sample never arrived.
    pub missing_periods: u64,
}

/// Cumulative fault-injection counters, mirrored from
/// `dicer_rdt::FaultStats` (the `From` impl lives in `dicer-rdt`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Samples perturbed (once per sample that saw any perturbation).
    pub perturbed_samples: u64,
    /// Samples dropped outright.
    pub dropped_samples: u64,
    /// Samples replaced by the previous period's counters.
    pub stale_samples: u64,
    /// Plan applies that failed on first attempt.
    pub failed_applies: u64,
    /// Plan applies postponed by one period.
    pub delayed_applies: u64,
    /// Retry attempts for previously failed applies.
    pub retried_applies: u64,
    /// Plans discarded after the retry budget ran out.
    pub abandoned_applies: u64,
}

/// One monitoring period's headline numbers, emitted by the server after
/// each `step_period`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeriodEvent {
    /// Simulation time at period end, seconds.
    pub time_s: f64,
    /// HP IPC over the period.
    pub hp_ipc: f64,
    /// HP memory bandwidth over the period, Gbps.
    pub hp_bw_gbps: f64,
    /// Total link traffic over the period, Gbps.
    pub total_bw_gbps: f64,
    /// HP ways in force during the period.
    pub hp_ways: u32,
    /// Number of BE slots (paused or not).
    pub n_bes: u32,
}

/// Why the controller held its allocation this period (stable labels; used
/// in traces and as a metric label).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HoldReason {
    /// First observation after (re)priming: no Eq. 3 reference yet.
    Priming,
    /// IPC improved beyond the stability band: same needs, faster phase.
    Improved,
    /// Already at the one-way floor; nothing left to give.
    Floor,
    /// Link saturated but the sampling cool-down is still running.
    SaturatedCooldown,
    /// A CT-favoured reset was validated: stay at the reset allocation.
    ResetValidated,
    /// A CT-thwarted reset landed near `IPC_opt`: stay at the optimum.
    NearOptimum,
}

impl HoldReason {
    /// Stable snake_case label.
    pub fn as_str(&self) -> &'static str {
        match self {
            HoldReason::Priming => "priming",
            HoldReason::Improved => "improved",
            HoldReason::Floor => "floor",
            HoldReason::SaturatedCooldown => "saturated_cooldown",
            HoldReason::ResetValidated => "reset_validated",
            HoldReason::NearOptimum => "near_optimum",
        }
    }
}

/// What pushed the controller into a Listing 3 reset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResetCause {
    /// HP IPC fell below the Eq. 3 stability band.
    Degradation,
    /// An Eq. 2 phase change fired.
    PhaseChange,
}

impl ResetCause {
    /// Stable snake_case label.
    pub fn as_str(&self) -> &'static str {
        match self {
            ResetCause::Degradation => "degradation",
            ResetCause::PhaseChange => "phase_change",
        }
    }
}

/// One DICER state transition (Listings 1–3), stamped with the
/// controller's period counter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ControllerEvent {
    /// Saturation (re)triggered an allocation sweep; the first candidate
    /// is now in force.
    SamplingStarted {
        /// First candidate allocation (HP ways).
        first_ways: u32,
    },
    /// The sweep advanced to its next candidate.
    SamplingProbe {
        /// Candidate allocation now in force (HP ways).
        ways: u32,
    },
    /// The sweep finished: the argmax allocation is enforced and a
    /// cool-down armed.
    SamplingConcluded {
        /// `optimal_allocation` (HP ways).
        optimal_ways: u32,
        /// `IPC_opt` measured at that allocation.
        ipc_opt: f64,
        /// Periods of cool-down armed before saturation may resample.
        cooldown: u32,
    },
    /// Listing 2 stable step: one way moved from HP to the BEs.
    Shrink {
        /// HP ways before the step.
        from_ways: u32,
        /// HP ways after the step.
        to_ways: u32,
    },
    /// The allocation was held.
    Hold {
        /// HP ways held.
        ways: u32,
        /// Why.
        reason: HoldReason,
    },
    /// Listing 3 entry: the reset allocation is now in force and under
    /// validation.
    Reset {
        /// Allocation reset to (CT for CT-F, the sampled optimum for CT-T).
        target_ways: u32,
        /// What triggered it.
        cause: ResetCause,
    },
    /// A CT-favoured reset did not recover: reverted to the allocation
    /// that triggered it.
    Rollback {
        /// Allocation rolled back to (HP ways).
        ways: u32,
    },
    /// An Eq. 2 phase change was detected (always followed by a `Reset`).
    PhaseChange {
        /// HP bandwidth that fired the detector, Gbps.
        hp_bw_gbps: f64,
    },
    /// The period's monitoring sample never arrived; holdover applied.
    MissingPeriod,
    /// The bandwidth governor tightened the BE-class MBA throttle one step.
    ThrottleTightened {
        /// Throttle now in force, percent of the unthrottled request rate.
        percent: u8,
    },
    /// The bandwidth governor relaxed the BE-class MBA throttle one step.
    ThrottleRelaxed {
        /// Throttle now in force, percent of the unthrottled request rate.
        percent: u8,
    },
    /// The admission controller evicted one BE from the server.
    BeEvicted {
        /// BEs still admitted after the eviction.
        admitted: u32,
    },
    /// The admission controller re-admitted one previously evicted BE.
    BeReadmitted {
        /// BEs admitted after the re-admission.
        admitted: u32,
    },
}

impl ControllerEvent {
    /// Stable snake_case label naming the transition (used as the JSON
    /// `kind` and as a metric label).
    pub fn kind(&self) -> &'static str {
        match self {
            ControllerEvent::SamplingStarted { .. } => "sampling_started",
            ControllerEvent::SamplingProbe { .. } => "sampling_probe",
            ControllerEvent::SamplingConcluded { .. } => "sampling_concluded",
            ControllerEvent::Shrink { .. } => "shrink",
            ControllerEvent::Hold { .. } => "hold",
            ControllerEvent::Reset { .. } => "reset",
            ControllerEvent::Rollback { .. } => "rollback",
            ControllerEvent::PhaseChange { .. } => "phase_change",
            ControllerEvent::MissingPeriod => "missing_period",
            ControllerEvent::ThrottleTightened { .. } => "throttle_tightened",
            ControllerEvent::ThrottleRelaxed { .. } => "throttle_relaxed",
            ControllerEvent::BeEvicted { .. } => "be_evicted",
            ControllerEvent::BeReadmitted { .. } => "be_readmitted",
        }
    }
}

/// One per-period decision record of a scenario run — the telemetry-bus
/// form of `experiments::scenarios::DecisionRecord`. Renders to the exact
/// golden-trace JSON line format.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionEvent {
    /// Period index, from 0.
    pub period: u32,
    /// Simulation time at period end, seconds (ground truth).
    pub time_s: f64,
    /// Controller state label after the decision.
    pub state: String,
    /// Whether the workload is still classified CT-Favoured.
    pub ct_favoured: bool,
    /// HP ways the controller intends to be in force.
    pub target_hp_ways: u32,
    /// HP ways actually in force on the platform.
    pub applied_hp_ways: u32,
    /// HP IPC as delivered to the controller (`None` on a drop).
    pub hp_ipc: Option<f64>,
    /// HP bandwidth as delivered, Gbps.
    pub hp_bw_gbps: Option<f64>,
    /// Total link traffic as delivered, Gbps.
    pub total_bw_gbps: Option<f64>,
    /// EWMA of delivered total traffic.
    pub total_bw_ewma_gbps: Option<f64>,
    /// Whether this period's sample was dropped.
    pub dropped: bool,
    /// Fault-event labels observed this period.
    pub events: Vec<String>,
    /// Cumulative controller counters after this period.
    pub stats: ControllerCounters,
}

/// The end-of-run summary line of a scenario trace.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSummaryEvent {
    /// Scenario label.
    pub scenario: String,
    /// Periods recorded.
    pub periods: usize,
    /// Final controller counters.
    pub dicer_stats: ControllerCounters,
    /// Final injector counters.
    pub fault_stats: FaultCounters,
}

/// One structured telemetry event. The bus vocabulary covers the whole
/// stack: server periods, controller transitions, partition applies,
/// fault injections, and the scenario-trace records whose JSONL rendering
/// the golden files pin down.
#[derive(Debug, Clone, PartialEq)]
pub enum TelemetryEvent {
    /// A monitoring period elapsed on the server.
    Period(PeriodEvent),
    /// A DICER state transition, stamped with the controller's period
    /// counter (periods observed so far, missing ones included).
    Controller {
        /// Controller period counter at emission.
        period: u64,
        /// The transition.
        event: ControllerEvent,
    },
    /// A partition plan landed on the platform.
    PartitionApplied {
        /// Simulation time of the apply, seconds.
        time_s: f64,
        /// HP ways of the plan (for `Unmanaged`, the full cache).
        hp_ways: u32,
        /// Cache ways.
        n_ways: u32,
    },
    /// A fault injector fired.
    Fault {
        /// Stable `dicer_rdt::FaultEvent` label.
        label: &'static str,
    },
    /// A registered controller's state/severity snapshot changed. Emitted
    /// by the `ControllerPolicy` facade on change only (never by the bare
    /// controllers), so golden-producing paths never see it.
    ControllerStatus {
        /// Controller display name (e.g. `"DICER+MBA"`).
        name: &'static str,
        /// Controller period counter at emission.
        period: u64,
        /// Stable state label (e.g. `"sampling"`).
        state: &'static str,
        /// Severity code, 0 (nominal) ..= 3 (critical).
        severity: u8,
    },
    /// A scenario-trace decision record (golden JSONL line format).
    Decision(DecisionEvent),
    /// A scenario-trace summary (golden JSONL final line format).
    ScenarioSummary(ScenarioSummaryEvent),
    /// A closed tracing span (see [`crate::trace`]). Only emitted when a
    /// `Tracer` is attached, so golden-producing paths never see it.
    Span(crate::trace::SpanEvent),
}

/// Minimal JSON string escaping (labels in traces are plain ASCII, but the
/// emitter must still be total).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON number via Rust's shortest-roundtrip `Display` — deterministic for
/// a given bit pattern, which is what the golden-trace contract needs.
pub fn json_f64(x: f64) -> String {
    debug_assert!(x.is_finite(), "traces never carry non-finite numbers");
    format!("{x}")
}

/// `null` for a missing value, [`json_f64`] otherwise.
pub fn json_opt_f64(x: Option<f64>) -> String {
    match x {
        Some(x) => json_f64(x),
        None => "null".to_string(),
    }
}

fn json_controller_counters(s: &ControllerCounters) -> String {
    format!(
        "{{\"sampling_periods\":{},\"shrinks\":{},\"resets\":{},\
         \"phase_changes\":{},\"saturated_periods\":{},\"missing_periods\":{}}}",
        s.sampling_periods, s.shrinks, s.resets, s.phase_changes, s.saturated_periods,
        s.missing_periods
    )
}

fn json_fault_counters(s: &FaultCounters) -> String {
    format!(
        "{{\"perturbed_samples\":{},\"dropped_samples\":{},\"stale_samples\":{},\
         \"failed_applies\":{},\"delayed_applies\":{},\"retried_applies\":{},\
         \"abandoned_applies\":{}}}",
        s.perturbed_samples, s.dropped_samples, s.stale_samples, s.failed_applies,
        s.delayed_applies, s.retried_applies, s.abandoned_applies
    )
}

impl DecisionEvent {
    /// The golden-trace line format: one JSON object, fixed field order,
    /// no `event` discriminator. Byte-compatible with the pre-telemetry
    /// hand-rolled emitter in `experiments::scenarios` — the committed
    /// `results/robustness/*.jsonl` files pin this rendering down.
    pub fn to_json(&self) -> String {
        let events: Vec<String> = self.events.iter().map(|e| json_str(e)).collect();
        format!(
            "{{\"period\":{},\"time_s\":{},\"state\":{},\"ct_favoured\":{},\
             \"target_hp_ways\":{},\"applied_hp_ways\":{},\"hp_ipc\":{},\
             \"hp_bw_gbps\":{},\"total_bw_gbps\":{},\"total_bw_ewma_gbps\":{},\
             \"dropped\":{},\"events\":[{}],\"stats\":{}}}",
            self.period,
            json_f64(self.time_s),
            json_str(&self.state),
            self.ct_favoured,
            self.target_hp_ways,
            self.applied_hp_ways,
            json_opt_f64(self.hp_ipc),
            json_opt_f64(self.hp_bw_gbps),
            json_opt_f64(self.total_bw_gbps),
            json_opt_f64(self.total_bw_ewma_gbps),
            self.dropped,
            events.join(","),
            json_controller_counters(&self.stats),
        )
    }
}

impl ScenarioSummaryEvent {
    /// The golden-trace summary line format (fixed field order, no
    /// discriminator).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"scenario\":{},\"periods\":{},\"dicer_stats\":{},\"fault_stats\":{}}}",
            json_str(&self.scenario),
            self.periods,
            json_controller_counters(&self.dicer_stats),
            json_fault_counters(&self.fault_stats),
        )
    }
}

impl ControllerEvent {
    fn detail_json(&self) -> String {
        match self {
            ControllerEvent::SamplingStarted { first_ways } => {
                format!(",\"first_ways\":{first_ways}")
            }
            ControllerEvent::SamplingProbe { ways } => format!(",\"ways\":{ways}"),
            ControllerEvent::SamplingConcluded { optimal_ways, ipc_opt, cooldown } => format!(
                ",\"optimal_ways\":{optimal_ways},\"ipc_opt\":{},\"cooldown\":{cooldown}",
                json_f64(*ipc_opt)
            ),
            ControllerEvent::Shrink { from_ways, to_ways } => {
                format!(",\"from_ways\":{from_ways},\"to_ways\":{to_ways}")
            }
            ControllerEvent::Hold { ways, reason } => {
                format!(",\"ways\":{ways},\"reason\":{}", json_str(reason.as_str()))
            }
            ControllerEvent::Reset { target_ways, cause } => {
                format!(",\"target_ways\":{target_ways},\"cause\":{}", json_str(cause.as_str()))
            }
            ControllerEvent::Rollback { ways } => format!(",\"ways\":{ways}"),
            ControllerEvent::PhaseChange { hp_bw_gbps } => {
                format!(",\"hp_bw_gbps\":{}", json_f64(*hp_bw_gbps))
            }
            ControllerEvent::MissingPeriod => String::new(),
            ControllerEvent::ThrottleTightened { percent }
            | ControllerEvent::ThrottleRelaxed { percent } => format!(",\"percent\":{percent}"),
            ControllerEvent::BeEvicted { admitted } | ControllerEvent::BeReadmitted { admitted } => {
                format!(",\"admitted\":{admitted}")
            }
        }
    }
}

impl TelemetryEvent {
    /// Dense family index, aligned with [`crate::Interests`] bits — the
    /// fan-out router keys its delivery lists on this.
    pub fn family(&self) -> usize {
        match self {
            TelemetryEvent::Period(_) => 0,
            TelemetryEvent::Controller { .. } => 1,
            TelemetryEvent::ControllerStatus { .. } => 2,
            TelemetryEvent::PartitionApplied { .. } => 3,
            TelemetryEvent::Fault { .. } => 4,
            TelemetryEvent::Decision(_) => 5,
            TelemetryEvent::ScenarioSummary(_) => 6,
            TelemetryEvent::Span(_) => 7,
        }
    }

    /// Coarse event-family label (used as the JSON `event` field and as a
    /// metric label).
    pub fn kind(&self) -> &'static str {
        match self {
            TelemetryEvent::Period(_) => "period",
            TelemetryEvent::Controller { .. } => "controller",
            TelemetryEvent::ControllerStatus { .. } => "controller_status",
            TelemetryEvent::PartitionApplied { .. } => "partition_applied",
            TelemetryEvent::Fault { .. } => "fault",
            TelemetryEvent::Decision(_) => "decision",
            TelemetryEvent::ScenarioSummary(_) => "scenario_summary",
            TelemetryEvent::Span(_) => "span",
        }
    }

    /// One JSON object, no trailing newline. Decision and summary events
    /// render in the legacy golden-trace format (no discriminator); every
    /// other family renders as `{"event":"<kind>",...}`.
    pub fn to_json(&self) -> String {
        match self {
            TelemetryEvent::Decision(d) => d.to_json(),
            TelemetryEvent::ScenarioSummary(s) => s.to_json(),
            TelemetryEvent::Period(p) => format!(
                "{{\"event\":\"period\",\"time_s\":{},\"hp_ipc\":{},\"hp_bw_gbps\":{},\
                 \"total_bw_gbps\":{},\"hp_ways\":{},\"n_bes\":{}}}",
                json_f64(p.time_s),
                json_f64(p.hp_ipc),
                json_f64(p.hp_bw_gbps),
                json_f64(p.total_bw_gbps),
                p.hp_ways,
                p.n_bes,
            ),
            TelemetryEvent::Controller { period, event } => format!(
                "{{\"event\":\"controller\",\"period\":{},\"kind\":{}{}}}",
                period,
                json_str(event.kind()),
                event.detail_json(),
            ),
            TelemetryEvent::ControllerStatus { name, period, state, severity } => format!(
                "{{\"event\":\"controller_status\",\"name\":{},\"period\":{},\"state\":{},\
                 \"severity\":{}}}",
                json_str(name),
                period,
                json_str(state),
                severity,
            ),
            TelemetryEvent::PartitionApplied { time_s, hp_ways, n_ways } => format!(
                "{{\"event\":\"partition_applied\",\"time_s\":{},\"hp_ways\":{},\"n_ways\":{}}}",
                json_f64(*time_s),
                hp_ways,
                n_ways,
            ),
            TelemetryEvent::Fault { label } => {
                format!("{{\"event\":\"fault\",\"kind\":{}}}", json_str(label))
            }
            TelemetryEvent::Span(s) => s.to_json(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_str_escapes_quotes_backslashes_and_controls() {
        assert_eq!(json_str("plain"), "\"plain\"");
        assert_eq!(json_str("a\"b"), "\"a\\\"b\"");
        assert_eq!(json_str("a\\b"), "\"a\\\\b\"");
        assert_eq!(json_str("a\nb"), "\"a\\u000ab\"");
    }

    #[test]
    fn json_f64_is_shortest_roundtrip() {
        assert_eq!(json_f64(1.0), "1");
        assert_eq!(json_f64(0.30000000000000004), "0.30000000000000004");
        assert_eq!(json_opt_f64(None), "null");
        assert_eq!(json_opt_f64(Some(2.5)), "2.5");
    }

    #[test]
    fn decision_event_renders_golden_line_format() {
        let d = DecisionEvent {
            period: 3,
            time_s: 4.0,
            state: "optimising".into(),
            ct_favoured: true,
            target_hp_ways: 17,
            applied_hp_ways: 18,
            hp_ipc: Some(1.25),
            hp_bw_gbps: Some(5.5),
            total_bw_gbps: None,
            total_bw_ewma_gbps: Some(20.25),
            dropped: false,
            events: vec!["apply_delayed".into()],
            stats: ControllerCounters { shrinks: 2, ..Default::default() },
        };
        assert_eq!(
            d.to_json(),
            "{\"period\":3,\"time_s\":4,\"state\":\"optimising\",\"ct_favoured\":true,\
             \"target_hp_ways\":17,\"applied_hp_ways\":18,\"hp_ipc\":1.25,\
             \"hp_bw_gbps\":5.5,\"total_bw_gbps\":null,\"total_bw_ewma_gbps\":20.25,\
             \"dropped\":false,\"events\":[\"apply_delayed\"],\
             \"stats\":{\"sampling_periods\":0,\"shrinks\":2,\"resets\":0,\
             \"phase_changes\":0,\"saturated_periods\":0,\"missing_periods\":0}}"
        );
    }

    #[test]
    fn summary_event_renders_golden_summary_format() {
        let s = ScenarioSummaryEvent {
            scenario: "clean_ctf".into(),
            periods: 60,
            dicer_stats: ControllerCounters::default(),
            fault_stats: FaultCounters { dropped_samples: 4, ..Default::default() },
        };
        let json = s.to_json();
        assert!(json.starts_with("{\"scenario\":\"clean_ctf\",\"periods\":60,"));
        assert!(json.contains("\"dropped_samples\":4"));
        assert!(!json.contains("\"event\""), "summary lines carry no discriminator");
    }

    #[test]
    fn bus_events_carry_a_discriminator() {
        let p = TelemetryEvent::Period(PeriodEvent {
            time_s: 1.0,
            hp_ipc: 1.5,
            hp_bw_gbps: 5.0,
            total_bw_gbps: 30.0,
            hp_ways: 19,
            n_bes: 9,
        });
        assert!(p.to_json().starts_with("{\"event\":\"period\","));
        let f = TelemetryEvent::Fault { label: "sample_dropped" };
        assert_eq!(f.to_json(), "{\"event\":\"fault\",\"kind\":\"sample_dropped\"}");
        let c = TelemetryEvent::Controller {
            period: 7,
            event: ControllerEvent::Shrink { from_ways: 18, to_ways: 17 },
        };
        assert_eq!(
            c.to_json(),
            "{\"event\":\"controller\",\"period\":7,\"kind\":\"shrink\",\
             \"from_ways\":18,\"to_ways\":17}"
        );
    }

    #[test]
    fn controller_event_kinds_are_stable() {
        let cases: [(ControllerEvent, &str); 13] = [
            (ControllerEvent::SamplingStarted { first_ways: 19 }, "sampling_started"),
            (ControllerEvent::SamplingProbe { ways: 13 }, "sampling_probe"),
            (
                ControllerEvent::SamplingConcluded { optimal_ways: 6, ipc_opt: 1.0, cooldown: 10 },
                "sampling_concluded",
            ),
            (ControllerEvent::Shrink { from_ways: 5, to_ways: 4 }, "shrink"),
            (ControllerEvent::Hold { ways: 5, reason: HoldReason::Priming }, "hold"),
            (
                ControllerEvent::Reset { target_ways: 19, cause: ResetCause::Degradation },
                "reset",
            ),
            (ControllerEvent::Rollback { ways: 17 }, "rollback"),
            (ControllerEvent::PhaseChange { hp_bw_gbps: 8.0 }, "phase_change"),
            (ControllerEvent::MissingPeriod, "missing_period"),
            (ControllerEvent::ThrottleTightened { percent: 90 }, "throttle_tightened"),
            (ControllerEvent::ThrottleRelaxed { percent: 100 }, "throttle_relaxed"),
            (ControllerEvent::BeEvicted { admitted: 8 }, "be_evicted"),
            (ControllerEvent::BeReadmitted { admitted: 9 }, "be_readmitted"),
        ];
        for (ev, kind) in cases {
            assert_eq!(ev.kind(), kind);
            let wrapped = TelemetryEvent::Controller { period: 0, event: ev };
            assert!(wrapped.to_json().contains(&format!("\"kind\":\"{kind}\"")));
        }
    }

    #[test]
    fn governor_and_admission_events_render_their_details() {
        let t = TelemetryEvent::Controller {
            period: 11,
            event: ControllerEvent::ThrottleTightened { percent: 90 },
        };
        assert_eq!(
            t.to_json(),
            "{\"event\":\"controller\",\"period\":11,\"kind\":\"throttle_tightened\",\
             \"percent\":90}"
        );
        let e = TelemetryEvent::Controller {
            period: 40,
            event: ControllerEvent::BeEvicted { admitted: 8 },
        };
        assert_eq!(
            e.to_json(),
            "{\"event\":\"controller\",\"period\":40,\"kind\":\"be_evicted\",\"admitted\":8}"
        );
    }

    #[test]
    fn controller_status_renders_name_state_and_severity() {
        let s = TelemetryEvent::ControllerStatus {
            name: "DICER+MBA",
            period: 3,
            state: "sampling",
            severity: 2,
        };
        assert_eq!(s.kind(), "controller_status");
        assert_eq!(
            s.to_json(),
            "{\"event\":\"controller_status\",\"name\":\"DICER+MBA\",\"period\":3,\
             \"state\":\"sampling\",\"severity\":2}"
        );
    }
}
