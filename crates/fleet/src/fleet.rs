//! The fleet itself: N node sessions advanced in deterministic rounds.
//!
//! Determinism contract: every cross-node decision — departures,
//! arrival placement, migration application — runs serially on the
//! driver thread in node order, and only the embarrassingly parallel
//! node stepping fans out on [`SweepRunner::map_mut`] (whose collection
//! is index-ordered). A fleet run is therefore a pure function of
//! `(FleetConfig, scheduler)`, byte-identical at any `--jobs`.

use crate::churn::ChurnConfig;
use crate::outcome::{FleetOutcome, NodeOutcome};
use crate::pool::FleetPool;
use crate::scheduler::{ArrivalView, NodeView, ResidentView, Scheduler};
use dicer_experiments::{Session, SweepRunner};
use dicer_metrics::Cdf;
use dicer_policy::{Controller, ControllerPolicy, ControllerRegistry, Severity};
use dicer_rdt::PeriodSample;
use dicer_server::{Server, ServerConfig};

/// The per-node policy: any registered controller behind the framework
/// wrapper, exactly what `dicer-sim run` drives on a single node.
pub type NodePolicy = ControllerPolicy<Box<dyn Controller + Send>>;

/// Fleet shape and simulation parameters.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Node count.
    pub nodes: usize,
    /// Rounds a [`Fleet::run`] simulates (one period per node per round).
    pub rounds: u32,
    /// Churn seed.
    pub seed: u64,
    /// Controller registry key every node runs (`"dicer-adm"` in the
    /// standard mix — the scheduler consumes its severity ladder, which
    /// the `placement-signal` conformance clause pins as stable).
    pub controller: &'static str,
    /// Churn slots per node, beyond the permanent baseline BE. Bounded by
    /// the server core budget (baseline + capacity + HP <= cores).
    pub capacity: usize,
    /// Max outgoing migrations per node per round (0 disables migration).
    pub migration_budget: u32,
    /// Rounds of sustained `Degraded`-or-worse severity before the
    /// migrating scheduler may evict (its trigger threshold).
    pub degraded_streak: u32,
    /// Per-node platform configuration.
    pub server: ServerConfig,
    /// Arrival stream parameters.
    pub churn: ChurnConfig,
}

impl FleetConfig {
    /// The standard churn scenario every committed fleet artifact uses.
    pub fn standard(nodes: usize, rounds: u32, seed: u64) -> Self {
        Self {
            nodes,
            rounds,
            seed,
            controller: "dicer-adm",
            capacity: 6,
            migration_budget: 1,
            degraded_streak: 4,
            server: ServerConfig::table1(),
            churn: ChurnConfig::standard(nodes),
        }
    }
}

/// A resident churn BE: which pool entry, and when it leaves on its own.
/// `residents[i]` always mirrors the node server's BE slot `i + 1`
/// (slot 0 is the permanent baseline).
#[derive(Debug, Clone, Copy)]
struct Resident {
    pool_idx: usize,
    departs_at: u32,
}

/// One fleet node: a full single-server control session plus the
/// bookkeeping the scheduler and the outcome aggregation need.
struct Node {
    session: Session<Server, NodePolicy>,
    sample: PeriodSample,
    hp_entry: usize,
    baseline_idx: usize,
    hp_ipc_alone: f64,
    residents: Vec<Resident>,
    severity: Severity,
    streak: u32,
    slowdown_sum: f64,
    periods: u32,
    banked_insns: f64,
    banked_completions: u64,
    migrations_out: u64,
}

impl Node {
    /// One monitoring period: step the session, fold the HP slowdown,
    /// refresh the severity streak. Entirely node-local — this is the
    /// part that fans out in parallel.
    fn step(&mut self) {
        self.session.step_one(&mut self.sample);
        self.slowdown_sum += self.hp_ipc_alone / self.sample.hp.ipc;
        self.periods += 1;
        let severity = self.session.policy().summary().severity;
        self.severity = severity;
        if severity >= Severity::Degraded {
            self.streak += 1;
        } else {
            self.streak = 0;
        }
    }

    fn slowdown_mean(&self) -> f64 {
        if self.periods == 0 {
            1.0
        } else {
            self.slowdown_sum / self.periods as f64
        }
    }

    /// BE instructions retired on this node so far: currently resident
    /// (baseline included) plus banked from departures/migrations.
    fn be_retired(&self) -> f64 {
        self.banked_insns
            + self.session.platform().bes().iter().map(|b| b.retired_insns).sum::<f64>()
    }

    fn be_completions(&self) -> u64 {
        self.banked_completions
            + self.session.platform().bes().iter().map(|b| b.completions as u64).sum::<u64>()
    }
}

/// Live snapshot of one node, for the control plane.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeStatus {
    /// Node id.
    pub node: usize,
    /// Current controller severity.
    pub severity: Severity,
    /// Consecutive rounds at `Degraded` or worse.
    pub degraded_streak: u32,
    /// Resident churn BEs (baseline excluded).
    pub residents: usize,
    /// Mean HP slowdown so far, relative to the unloaded reference node
    /// with the same HP.
    pub hp_slowdown_mean: f64,
}

/// Live snapshot of the whole fleet, for the control plane.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetStatus {
    /// Rounds completed.
    pub round: u32,
    /// Node count.
    pub nodes: usize,
    /// Arrivals admitted so far.
    pub arrivals: u64,
    /// Arrivals rejected so far.
    pub rejected: u64,
    /// Migrations applied so far.
    pub migrations: u64,
    /// Worst current severity across nodes.
    pub worst_severity: Severity,
    /// Per-node snapshots, in node order.
    pub per_node: Vec<NodeStatus>,
}

impl FleetStatus {
    /// Renders the snapshot as JSON (hand-rolled: the daemon serves this
    /// on `/fleet` and must not depend on an external serialiser).
    pub fn to_json(&self) -> String {
        let per_node: Vec<String> = self
            .per_node
            .iter()
            .map(|n| {
                format!(
                    "{{\"node\":{},\"severity\":\"{}\",\"degraded_streak\":{},\
                     \"residents\":{},\"hp_slowdown_mean\":{}}}",
                    n.node,
                    n.severity.as_str(),
                    n.degraded_streak,
                    n.residents,
                    n.hp_slowdown_mean,
                )
            })
            .collect();
        format!(
            "{{\"round\":{},\"nodes\":{},\"arrivals\":{},\"rejected\":{},\
             \"migrations\":{},\"worst_severity\":\"{}\",\"per_node\":[{}]}}",
            self.round,
            self.nodes,
            self.arrivals,
            self.rejected,
            self.migrations,
            self.worst_severity.as_str(),
            per_node.join(","),
        )
    }
}

/// N node sessions, one scheduler, one churn stream.
pub struct Fleet {
    cfg: FleetConfig,
    pool: FleetPool,
    nodes: Vec<Node>,
    /// Unloaded reference nodes, one per HP type in use (see
    /// [`Fleet::with_pool`]); reported slowdowns are relative to these.
    refs: Vec<Node>,
    scheduler: Box<dyn Scheduler>,
    round: u32,
    arrivals: u64,
    departures: u64,
    rejected: u64,
    migrations: u64,
    migrations_skipped: u64,
    max_node_round_migrations: u32,
}

impl std::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fleet")
            .field("nodes", &self.nodes.len())
            .field("round", &self.round)
            .field("scheduler", &self.scheduler.name())
            .finish_non_exhaustive()
    }
}

impl Fleet {
    /// Builds a fleet over the standard workload pool.
    pub fn new(cfg: FleetConfig, scheduler: Box<dyn Scheduler>) -> Self {
        let pool = FleetPool::standard(&cfg.server);
        Self::with_pool(cfg, scheduler, pool)
    }

    /// Builds a fleet over a caller-supplied pool. Node `i` gets HP
    /// `pool.hps[i % |hps|]`; every node's permanent baseline BE is the
    /// *lightest* pool BE (lowest bandwidth demand) — the baseline exists
    /// only because a server cannot run empty, and a heavy fixed
    /// co-runner would pin the worst node's slowdown no matter where the
    /// scheduler places arrivals. Every node starts with its
    /// controller's initial plan applied, exactly like a single-node run.
    pub fn with_pool(cfg: FleetConfig, scheduler: Box<dyn Scheduler>, pool: FleetPool) -> Self {
        assert!(cfg.nodes >= 1, "a fleet needs at least one node");
        assert!(!pool.hps.is_empty() && !pool.bes.is_empty(), "pool must not be empty");
        assert!(
            1 + cfg.capacity < cfg.server.n_cores as usize,
            "baseline + {} churn slots + HP exceed {} cores",
            cfg.capacity,
            cfg.server.n_cores
        );
        let registry = ControllerRegistry::standard();
        let spec = registry
            .get(cfg.controller)
            .unwrap_or_else(|| panic!("unknown controller {:?}", cfg.controller));
        let baseline_idx = pool
            .bes
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.bw_demand.total_cmp(&b.bw_demand))
            .map(|(i, _)| i)
            .expect("pool has at least one BE");
        let make_node = |hp_entry: usize| {
            let server = Server::new(
                cfg.server,
                pool.hps[hp_entry].profile.clone(),
                vec![pool.bes[baseline_idx].profile.clone()],
            );
            let mut session = Session::new(server, spec.build_policy(), u32::MAX);
            session.begin();
            Node {
                session,
                sample: PeriodSample::default(),
                hp_entry,
                baseline_idx,
                hp_ipc_alone: pool.hps[hp_entry].ipc_alone,
                residents: Vec::new(),
                severity: Severity::Nominal,
                streak: 0,
                slowdown_sum: 0.0,
                periods: 0,
                banked_insns: 0.0,
                banked_completions: 0,
                migrations_out: 0,
            }
        };
        let nodes = (0..cfg.nodes).map(|i| make_node(i % pool.hps.len())).collect();
        // One unloaded reference node per HP type in use: same HP, same
        // baseline BE, same controller, stepped in lockstep with the
        // fleet but never assigned an arrival. Reported slowdowns are
        // relative to these, so the controller's own steady-state probing
        // cost (which a scheduler cannot influence) cancels out and the
        // percentiles isolate what placement is responsible for.
        let refs = (0..pool.hps.len().min(cfg.nodes)).map(make_node).collect();
        Self {
            cfg,
            pool,
            nodes,
            refs,
            scheduler,
            round: 0,
            arrivals: 0,
            departures: 0,
            rejected: 0,
            migrations: 0,
            migrations_skipped: 0,
            max_node_round_migrations: 0,
        }
    }

    /// Fleet configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    /// Rounds completed so far.
    pub fn round(&self) -> u32 {
        self.round
    }

    /// The scheduler's views of every node, in node order.
    fn views(&self) -> Vec<NodeView> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| {
                let hp = &self.pool.hps[n.hp_entry];
                let base = &self.pool.bes[n.baseline_idx];
                let mut bw_pressure = base.bw_demand;
                let mut ways_pressure = base.ways_need;
                let residents: Vec<ResidentView> = n
                    .residents
                    .iter()
                    .map(|r| {
                        let e = &self.pool.bes[r.pool_idx];
                        bw_pressure += e.bw_demand;
                        ways_pressure += e.ways_need;
                        ResidentView {
                            pool_idx: r.pool_idx,
                            bw_demand: e.bw_demand,
                            ways_need: e.ways_need,
                        }
                    })
                    .collect();
                NodeView {
                    node: i,
                    free_slots: self.cfg.capacity - n.residents.len(),
                    bw_pressure,
                    ways_pressure,
                    hp_bw_demand: hp.bw_demand,
                    hp_ways_need: hp.ways_need,
                    severity: n.severity,
                    degraded_streak: n.streak,
                    residents,
                }
            })
            .collect()
    }

    /// Advances the whole fleet by one round: departures, scheduled
    /// arrivals, one parallel period per node, then budgeted migrations.
    pub fn step_round(&mut self, runner: &SweepRunner) {
        let round = self.round;

        // 1. Scheduled departures, serially in node order (highest
        // resident position first, so earlier removals do not shift later
        // ones). Departed work stays banked in the node's totals.
        for node in &mut self.nodes {
            let mut pos = node.residents.len();
            while pos > 0 {
                pos -= 1;
                if node.residents[pos].departs_at <= round {
                    let inst = node.session.platform_mut().remove_be(1 + pos);
                    node.banked_insns += inst.retired_insns;
                    node.banked_completions += inst.completions as u64;
                    node.residents.remove(pos);
                    self.departures += 1;
                }
            }
        }

        // 2. Arrivals, routed one at a time through the scheduler against
        // views that are updated as placements land.
        let batch =
            self.cfg.churn.draw(self.cfg.seed, round, self.pool.bes.len(), self.pool.flash_idx);
        if !batch.is_empty() {
            let mut views = self.views();
            for a in batch {
                let entry = &self.pool.bes[a.pool_idx];
                let arrival = ArrivalView {
                    pool_idx: a.pool_idx,
                    ways_need: entry.ways_need,
                    bw_demand: entry.bw_demand,
                };
                match self.scheduler.place(&views, &arrival) {
                    Some(id) if id < views.len() && views[id].free_slots > 0 => {
                        let node = &mut self.nodes[id];
                        node.session.platform_mut().add_be(entry.profile.clone());
                        node.residents
                            .push(Resident { pool_idx: a.pool_idx, departs_at: round + a.lifetime });
                        self.arrivals += 1;
                        views[id].free_slots -= 1;
                        views[id].bw_pressure += entry.bw_demand;
                        views[id].ways_pressure += entry.ways_need;
                        views[id].residents.push(ResidentView {
                            pool_idx: a.pool_idx,
                            bw_demand: entry.bw_demand,
                            ways_need: entry.ways_need,
                        });
                    }
                    _ => self.rejected += 1,
                }
            }
        }

        // 3. One monitoring period per node — the parallel fan-out. Nodes
        // are independent and collection is index-ordered, so this is
        // byte-identical at any --jobs. The unloaded reference nodes step
        // in the same lockstep.
        runner.map_mut(&mut self.nodes, |n| n.step());
        runner.map_mut(&mut self.refs, |n| n.step());

        // 4. Migrations, serially, with the per-node round budget and the
        // destination capacity enforced here no matter what the scheduler
        // asked for.
        if self.cfg.migration_budget > 0 {
            let views = self.views();
            let plans = self.scheduler.plan_migrations(&views, self.cfg.migration_budget);
            let mut out_this_round = vec![0u32; self.nodes.len()];
            for m in plans {
                let valid = m.from < self.nodes.len()
                    && m.to < self.nodes.len()
                    && m.from != m.to
                    && m.resident < self.nodes[m.from].residents.len()
                    && self.nodes[m.to].residents.len() < self.cfg.capacity
                    && out_this_round[m.from] < self.cfg.migration_budget;
                if !valid {
                    self.migrations_skipped += 1;
                    continue;
                }
                let resident = self.nodes[m.from].residents.remove(m.resident);
                let inst = self.nodes[m.from].session.platform_mut().remove_be(1 + m.resident);
                self.nodes[m.from].banked_insns += inst.retired_insns;
                self.nodes[m.from].banked_completions += inst.completions as u64;
                self.nodes[m.from].migrations_out += 1;
                let entry = &self.pool.bes[resident.pool_idx];
                self.nodes[m.to].session.platform_mut().add_be(entry.profile.clone());
                // The resident keeps its scheduled departure round: moving
                // does not extend a workload's stay.
                self.nodes[m.to].residents.push(resident);
                out_this_round[m.from] += 1;
                self.max_node_round_migrations =
                    self.max_node_round_migrations.max(out_this_round[m.from]);
                self.migrations += 1;
            }
        }

        self.round += 1;
    }

    /// Runs the remaining rounds up to `cfg.rounds` and aggregates.
    pub fn run(&mut self, runner: &SweepRunner) -> FleetOutcome {
        while self.round < self.cfg.rounds {
            self.step_round(runner);
        }
        self.outcome()
    }

    /// A node's mean HP slowdown relative to the unloaded reference node
    /// running the same HP under the same controller.
    fn relative_slowdown(&self, n: &Node) -> f64 {
        n.slowdown_mean() / self.refs[n.hp_entry].slowdown_mean()
    }

    /// Aggregates the run so far into a [`FleetOutcome`].
    pub fn outcome(&self) -> FleetOutcome {
        let slowdowns: Vec<f64> = self.nodes.iter().map(|n| self.relative_slowdown(n)).collect();
        let cdf = Cdf::new(slowdowns);
        let per_node: Vec<NodeOutcome> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| NodeOutcome {
                node: i,
                hp_slowdown_mean: self.relative_slowdown(n),
                be_retired_insns: n.be_retired(),
                be_completions: n.be_completions(),
                migrations_out: n.migrations_out,
                final_severity: n.severity,
            })
            .collect();
        FleetOutcome {
            scheduler: self.scheduler.name().to_string(),
            nodes: self.nodes.len(),
            rounds: self.round,
            seed: self.cfg.seed,
            hp_slowdown_p50: cdf.quantile(0.5),
            hp_slowdown_p99: cdf.quantile(0.99),
            be_retired_insns: per_node.iter().map(|r| r.be_retired_insns).sum::<f64>(),
            be_completions: per_node.iter().map(|r| r.be_completions).sum(),
            arrivals: self.arrivals,
            departures: self.departures,
            rejected: self.rejected,
            migrations: self.migrations,
            migrations_skipped: self.migrations_skipped,
            max_node_round_migrations: self.max_node_round_migrations,
            worst_severity: self.nodes.iter().map(|n| n.severity).max().unwrap_or(Severity::Nominal),
            per_node,
        }
    }

    /// Live control-plane snapshot (what `dicerd` serves and aggregates).
    pub fn status(&self) -> FleetStatus {
        FleetStatus {
            round: self.round,
            nodes: self.nodes.len(),
            arrivals: self.arrivals,
            rejected: self.rejected,
            migrations: self.migrations,
            worst_severity: self.nodes.iter().map(|n| n.severity).max().unwrap_or(Severity::Nominal),
            per_node: self
                .nodes
                .iter()
                .enumerate()
                .map(|(i, n)| NodeStatus {
                    node: i,
                    severity: n.severity,
                    degraded_streak: n.streak,
                    residents: n.residents.len(),
                    hp_slowdown_mean: self.relative_slowdown(n),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::SchedulerKind;

    fn small(nodes: usize, rounds: u32, kind: SchedulerKind) -> FleetOutcome {
        let cfg = FleetConfig::standard(nodes, rounds, 11);
        let sched = kind.build(cfg.seed, cfg.server.link.capacity_gbps, cfg.server.cache.ways, cfg.degraded_streak);
        Fleet::new(cfg, sched).run(&SweepRunner::serial())
    }

    #[test]
    fn a_small_fleet_runs_and_aggregates() {
        let out = small(6, 40, SchedulerKind::RoundRobin);
        assert_eq!(out.nodes, 6);
        assert_eq!(out.rounds, 40);
        assert!(out.arrivals > 0, "churn produced arrivals");
        assert!(out.be_retired_insns > 0.0);
        assert!(out.hp_slowdown_p50 >= 1.0 - 1e-9, "slowdown is normalised to solo");
        assert!(out.hp_slowdown_p99 >= out.hp_slowdown_p50);
        assert_eq!(out.per_node.len(), 6);
    }

    #[test]
    fn serial_and_parallel_fleets_are_byte_identical() {
        let run = |jobs: usize| {
            let cfg = FleetConfig::standard(8, 50, 3);
            let sched = SchedulerKind::Migrate.build(
                cfg.seed,
                cfg.server.link.capacity_gbps,
                cfg.server.cache.ways,
                cfg.degraded_streak,
            );
            Fleet::new(cfg, sched).run(&SweepRunner::with_jobs(jobs)).to_json()
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn migrations_respect_the_budget_and_capacity() {
        let out = small(8, 120, SchedulerKind::Migrate);
        assert!(
            out.max_node_round_migrations <= FleetConfig::standard(8, 120, 11).migration_budget,
            "budget enforced: {}",
            out.max_node_round_migrations
        );
        // Accounting identity: everything admitted either departed, is
        // still resident, or was rejected separately.
        assert!(out.departures <= out.arrivals);
    }

    #[test]
    fn status_snapshot_tracks_the_run() {
        let cfg = FleetConfig::standard(4, 10, 5);
        let sched = SchedulerKind::Pack.build(
            cfg.seed,
            cfg.server.link.capacity_gbps,
            cfg.server.cache.ways,
            cfg.degraded_streak,
        );
        let mut fleet = Fleet::new(cfg, sched);
        let runner = SweepRunner::serial();
        assert_eq!(fleet.status().round, 0);
        for _ in 0..10 {
            fleet.step_round(&runner);
        }
        let status = fleet.status();
        assert_eq!(status.round, 10);
        assert_eq!(status.nodes, 4);
        assert_eq!(status.per_node.len(), 4);
        assert!(status.per_node.iter().all(|n| n.residents <= fleet.config().capacity));
        let out = fleet.outcome();
        assert_eq!(out.rounds, 10);
        // The control-plane JSON carries the same snapshot.
        let json = status.to_json();
        assert!(json.starts_with("{\"round\":10,\"nodes\":4,"));
        assert_eq!(json.matches("\"node\":").count(), 4);
        assert!(json.contains(&format!(
            "\"worst_severity\":\"{}\"",
            status.worst_severity.as_str()
        )));
    }

    #[test]
    #[should_panic(expected = "unknown controller")]
    fn unknown_controller_is_rejected() {
        let cfg = FleetConfig { controller: "nope", ..FleetConfig::standard(2, 5, 1) };
        let sched = SchedulerKind::RoundRobin.build(1, 68.3, 20, 4);
        Fleet::new(cfg, sched);
    }
}
