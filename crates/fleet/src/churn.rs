//! Seeded, environment-independent workload churn.
//!
//! The arrival stream must be a **pure function of `(seed, round)`**: the
//! fleet replays rounds under any `--jobs`, `dicerd` runs it open-ended,
//! and the committed goldens must not depend on any external RNG crate's
//! stream. So churn is built on a splitmix64 generator — a dozen lines of
//! integer arithmetic, identical everywhere — with one independent
//! generator derived per round.
//!
//! Per round the stream draws a Poisson-distributed number of best-effort
//! arrivals (each with a pool index and a bounded uniform lifetime), and
//! scripted **flash-crowd windows** add a deterministic burst of arrivals
//! of the pool's most bandwidth-hungry entry on top — modelling the load
//! surges a latency-critical service sees when a crowd shows up.

/// One arrival produced by the churn stream: which pool entry shows up
/// and how many rounds it stays before departing on its own.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Index into the BE side of the [`crate::FleetPool`].
    pub pool_idx: usize,
    /// Rounds of residence before a scheduled departure.
    pub lifetime: u32,
}

/// Churn-stream parameters. [`ChurnConfig::standard`] is the pinned mix
/// every committed artifact uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnConfig {
    /// Mean Poisson BE arrivals per round, fleet-wide.
    pub arrivals_per_round: f64,
    /// Mean resident lifetime in rounds (lifetimes are uniform on
    /// `[1, 2·mean]`, so this is exact in expectation).
    pub lifetime_mean: u32,
    /// First round of the first flash-crowd window.
    pub flash_start: u32,
    /// Rounds between window starts (0 disables flash crowds).
    pub flash_period: u32,
    /// Window length in rounds.
    pub flash_len: u32,
    /// Extra burst arrivals per window round, on top of the Poisson draw.
    pub flash_extra: u32,
}

impl ChurnConfig {
    /// The standard churn scenario: steady Poisson churn scaled to the
    /// fleet size plus a periodic flash crowd.
    pub fn standard(nodes: usize) -> Self {
        Self {
            // One arrival per ~2 nodes per round keeps mid-size fleets
            // around half occupancy under the standard lifetime.
            arrivals_per_round: nodes as f64 / 10.0,
            lifetime_mean: 40,
            flash_start: 50,
            flash_period: 200,
            flash_len: 10,
            flash_extra: (nodes / 16).max(1) as u32,
        }
    }

    /// Whether `round` falls inside a scripted flash-crowd window.
    pub fn in_flash(&self, round: u32) -> bool {
        if self.flash_period == 0 || round < self.flash_start {
            return false;
        }
        (round - self.flash_start) % self.flash_period < self.flash_len
    }

    /// Draws the full arrival batch for `round`. Pure in `(seed, round)`:
    /// the same call always returns the same batch, regardless of what was
    /// drawn for any other round.
    pub fn draw(&self, seed: u64, round: u32, pool_bes: usize, flash_idx: usize) -> Vec<Arrival> {
        assert!(pool_bes > 0, "churn needs a non-empty pool");
        let mut rng = FleetRng::for_round(seed, round);
        let n = rng.poisson(self.arrivals_per_round);
        let mut out = Vec::with_capacity(n as usize + self.flash_extra as usize);
        for _ in 0..n {
            let pool_idx = (rng.next_u64() % pool_bes as u64) as usize;
            let lifetime = 1 + (rng.next_u64() % (2 * self.lifetime_mean as u64).max(1)) as u32;
            out.push(Arrival { pool_idx, lifetime });
        }
        if self.in_flash(round) {
            for _ in 0..self.flash_extra {
                let lifetime = 1 + (rng.next_u64() % self.lifetime_mean.max(1) as u64) as u32;
                out.push(Arrival { pool_idx: flash_idx, lifetime });
            }
        }
        out
    }
}

/// A splitmix64 generator — deterministic, dependency-free, identical on
/// every platform. Good enough statistically for workload churn; **not**
/// a cryptographic RNG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetRng {
    state: u64,
}

impl FleetRng {
    /// A generator for one `(seed, round)` cell, independent of every
    /// other round's.
    pub fn for_round(seed: u64, round: u32) -> Self {
        // Decorrelate seed and round through one scramble each, so
        // adjacent rounds do not share low-bit structure.
        Self { state: scramble(seed ^ scramble(round as u64 ^ 0x9e37_79b9_7f4a_7c15)) }
    }

    /// A generator seeded directly (scheduler tie-breaking).
    pub fn new(seed: u64) -> Self {
        Self { state: scramble(seed) }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        scramble(self.state)
    }

    /// Uniform draw in `[0, 1)` with 53 significant bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Poisson draw by Knuth's product-of-uniforms method — exact for the
    /// small per-round rates churn uses (capped at 4096 as a runaway
    /// guard for absurd rates).
    pub fn poisson(&mut self, mean: f64) -> u32 {
        assert!(mean.is_finite() && mean >= 0.0, "poisson mean must be >= 0: {mean}");
        if mean == 0.0 {
            return 0;
        }
        let limit = (-mean).exp();
        let mut k = 0u32;
        let mut p = 1.0;
        loop {
            p *= self.next_f64();
            if p <= limit || k >= 4096 {
                return k;
            }
            k += 1;
        }
    }
}

/// The splitmix64 output scramble (Steele, Lea & Flood 2014).
fn scramble(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_are_pure_and_independent() {
        let cfg = ChurnConfig::standard(32);
        let a = cfg.draw(7, 123, 8, 0);
        let b = cfg.draw(7, 123, 8, 0);
        assert_eq!(a, b, "same (seed, round) => same batch");
        // Drawing other rounds in between must not matter (no shared state).
        let _ = cfg.draw(7, 122, 8, 0);
        assert_eq!(cfg.draw(7, 123, 8, 0), a);
        assert_ne!(cfg.draw(8, 123, 8, 0), a, "seed reaches the stream");
    }

    #[test]
    fn poisson_mean_is_roughly_right() {
        let mut rng = FleetRng::new(1);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| rng.poisson(3.0) as u64).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "empirical mean {mean}");
        assert_eq!(FleetRng::new(2).poisson(0.0), 0);
    }

    #[test]
    fn uniform_is_in_range_and_varies() {
        let mut rng = FleetRng::new(42);
        let draws: Vec<f64> = (0..1000).map(|_| rng.next_f64()).collect();
        assert!(draws.iter().all(|u| (0.0..1.0).contains(u)));
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn flash_windows_follow_the_script() {
        let cfg = ChurnConfig { flash_start: 10, flash_period: 20, flash_len: 3, ..ChurnConfig::standard(16) };
        assert!(!cfg.in_flash(9));
        assert!(cfg.in_flash(10) && cfg.in_flash(12) && !cfg.in_flash(13));
        assert!(cfg.in_flash(30) && !cfg.in_flash(33));
        let off = ChurnConfig { flash_period: 0, ..cfg };
        assert!(!off.in_flash(10));
        // Inside a window the burst arrivals land on the flash entry.
        let batch = cfg.draw(3, 11, 8, 5);
        let burst = batch.iter().filter(|a| a.pool_idx == 5).count();
        assert!(burst >= cfg.flash_extra as usize);
    }

    #[test]
    fn lifetimes_are_positive_and_bounded() {
        let cfg = ChurnConfig::standard(64);
        for round in 0..50 {
            for a in cfg.draw(9, round, 8, 0) {
                assert!(a.lifetime >= 1 && a.lifetime <= 2 * cfg.lifetime_mean);
                assert!(a.pool_idx < 8);
            }
        }
    }
}
