//! Placement schedulers: who decides where a best-effort workload runs.
//!
//! The [`Fleet`] presents each scheduler with per-node [`NodeView`]s —
//! free slots, predicted link/cache pressure, the node controller's
//! severity ladder — and the scheduler answers two questions: where does
//! an arrival go ([`Scheduler::place`]), and which residents should move
//! ([`Scheduler::plan_migrations`]). Three families are raced against
//! each other in the committed `results/fleet_study.json`:
//!
//! * [`RoundRobin`] / [`RandomPlace`] — the sensitivity-blind baselines;
//! * [`SensitivityPack`] — bin-packing on *predicted* cache sensitivity
//!   and bandwidth demand (the appmodel-derived pool metadata), weighted
//!   by how sensitive each node's HP is to the respective resource;
//! * [`SensitivityMigrate`] — the packer plus migration: after a node's
//!   controller reports sustained `Degraded`-or-worse severity (the
//!   `placement-signal` conformance clause), its heaviest best-effort
//!   resident is evicted to the cheapest healthy node.
//!
//! Schedulers run serially on the fleet driver thread; determinism
//! requires only that they are deterministic functions of the views they
//! are handed (the seeded [`RandomPlace`] included).
//!
//! [`Fleet`]: crate::Fleet

use crate::churn::FleetRng;
use dicer_policy::Severity;

/// What a scheduler knows about one resident BE.
#[derive(Debug, Clone, PartialEq)]
pub struct ResidentView {
    /// Pool index of the resident.
    pub pool_idx: usize,
    /// Predicted solo bandwidth demand (Gbps).
    pub bw_demand: f64,
    /// Predicted ways for 95 % solo performance.
    pub ways_need: u32,
}

/// What a scheduler knows about one node when deciding placement.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeView {
    /// Node id (index into the fleet).
    pub node: usize,
    /// Churn slots still free on this node.
    pub free_slots: usize,
    /// Summed predicted bandwidth demand of the baseline and resident BEs.
    pub bw_pressure: f64,
    /// Summed predicted ways-need of the baseline and resident BEs.
    pub ways_pressure: u32,
    /// The node HP's predicted bandwidth demand (its bandwidth
    /// sensitivity: a loaded link hurts it in proportion).
    pub hp_bw_demand: f64,
    /// The node HP's predicted ways-need (its cache sensitivity).
    pub hp_ways_need: u32,
    /// Current severity reported by the node's controller.
    pub severity: Severity,
    /// Consecutive rounds at `Degraded` or worse (the migration trigger).
    pub degraded_streak: u32,
    /// Resident churn BEs, in server order.
    pub residents: Vec<ResidentView>,
}

/// What a scheduler knows about an arriving BE.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrivalView {
    /// Pool index of the arrival.
    pub pool_idx: usize,
    /// Predicted ways for 95 % solo performance.
    pub ways_need: u32,
    /// Predicted solo bandwidth demand (Gbps).
    pub bw_demand: f64,
}

/// One planned move: resident `resident` (position in
/// [`NodeView::residents`]) leaves node `from` for node `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Migration {
    /// Source node id.
    pub from: usize,
    /// Position of the resident on the source node.
    pub resident: usize,
    /// Destination node id.
    pub to: usize,
}

/// A placement policy. Implementations must be deterministic functions of
/// the views (plus their own seeded state) — that is the fleet's
/// byte-identity contract.
pub trait Scheduler: Send {
    /// Stable scheduler name (artifact keys).
    fn name(&self) -> &'static str;
    /// Picks the node an arrival lands on, or `None` to reject it when no
    /// acceptable node has a free slot.
    fn place(&mut self, views: &[NodeView], arrival: &ArrivalView) -> Option<usize>;
    /// Plans this round's migrations. `budget` is the per-node outgoing
    /// cap the fleet will enforce regardless. Default: never migrate.
    fn plan_migrations(&mut self, views: &[NodeView], budget: u32) -> Vec<Migration> {
        let _ = (views, budget);
        Vec::new()
    }
}

/// Sensitivity-blind baseline: next node in line, skipping full ones.
#[derive(Debug, Default)]
pub struct RoundRobin {
    next: usize,
}

impl Scheduler for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn place(&mut self, views: &[NodeView], _arrival: &ArrivalView) -> Option<usize> {
        let n = views.len();
        for probe in 0..n {
            let idx = (self.next + probe) % n;
            if views[idx].free_slots > 0 {
                self.next = (idx + 1) % n;
                return Some(views[idx].node);
            }
        }
        None
    }
}

/// Sensitivity-blind baseline: a seeded uniform pick, linear-probing past
/// full nodes.
#[derive(Debug)]
pub struct RandomPlace {
    rng: FleetRng,
}

impl RandomPlace {
    /// A seeded placer (same seed ⇒ same placement stream).
    pub fn new(seed: u64) -> Self {
        Self { rng: FleetRng::new(seed ^ 0x5157_af01_d5a2_b1c7) }
    }
}

impl Scheduler for RandomPlace {
    fn name(&self) -> &'static str {
        "random"
    }

    fn place(&mut self, views: &[NodeView], _arrival: &ArrivalView) -> Option<usize> {
        let n = views.len();
        let start = (self.rng.next_u64() % n as u64) as usize;
        (0..n).map(|p| (start + p) % n).find(|&i| views[i].free_slots > 0).map(|i| views[i].node)
    }
}

/// Bin-packing on predicted sensitivity: each candidate node is scored by
/// the link and cache pressure it would carry *after* the placement,
/// weighted by how sensitive its HP is to each resource; the cheapest
/// node (lowest id on ties) wins.
#[derive(Debug, Clone)]
pub struct SensitivityPack {
    link_capacity_gbps: f64,
    n_ways: u32,
}

impl SensitivityPack {
    /// A packer for the given platform geometry (the normalisers of the
    /// two pressure terms).
    pub fn new(link_capacity_gbps: f64, n_ways: u32) -> Self {
        assert!(link_capacity_gbps > 0.0 && n_ways > 0);
        Self { link_capacity_gbps, n_ways }
    }

    /// Projected link utilisation above which a placement is treated as
    /// saturating. DICER's own contention trigger sits at ~0.73 of the
    /// Table-1 link; scheduling to the same edge would hand the
    /// controller a node it can only fight, so the packer keeps a margin.
    const SATURATION_FRACTION: f64 = 0.7;
    /// Flat cost added to a saturating placement — large against the
    /// O(1) utilisation terms, so only a fleet with no unsaturated slot
    /// left ever chooses one.
    const SATURATION_PENALTY: f64 = 8.0;

    /// The placement cost of adding `(ways_need, bw_demand)` to `view`.
    fn cost(&self, view: &NodeView, ways_need: u32, bw_demand: f64) -> f64 {
        let bw = (view.hp_bw_demand + view.bw_pressure + bw_demand) / self.link_capacity_gbps;
        let ways = (view.hp_ways_need + view.ways_pressure + ways_need) as f64 / self.n_ways as f64;
        let hp_bw_sens = view.hp_bw_demand / self.link_capacity_gbps;
        let hp_cache_sens = view.hp_ways_need as f64 / self.n_ways as f64;
        // Congestion is convex — the fifth heavy co-runner hurts far more
        // than the first — so the utilisation terms are squared: an
        // insensitive node stops looking cheap once it actually fills,
        // while the sensitivity weights still steer load away from nodes
        // whose HP would pay the most for it.
        let saturating = if bw > Self::SATURATION_FRACTION { Self::SATURATION_PENALTY } else { 0.0 };
        bw * bw * (1.0 + 3.0 * hp_bw_sens) + ways * ways * (1.0 + 3.0 * hp_cache_sens) + saturating
    }

    /// Cheapest node with a free slot among `views` for which `eligible`
    /// holds (lowest id on ties).
    fn cheapest(
        &self,
        views: &[NodeView],
        ways_need: u32,
        bw_demand: f64,
        eligible: impl Fn(&NodeView) -> bool,
    ) -> Option<usize> {
        let mut best: Option<(f64, usize)> = None;
        for view in views {
            if view.free_slots == 0 || !eligible(view) {
                continue;
            }
            let cost = self.cost(view, ways_need, bw_demand);
            if best.is_none_or(|(c, _)| cost < c) {
                best = Some((cost, view.node));
            }
        }
        best.map(|(_, node)| node)
    }
}

impl Scheduler for SensitivityPack {
    fn name(&self) -> &'static str {
        "sensitivity-pack"
    }

    fn place(&mut self, views: &[NodeView], arrival: &ArrivalView) -> Option<usize> {
        self.cheapest(views, arrival.ways_need, arrival.bw_demand, |_| true)
    }
}

/// [`SensitivityPack`] placement plus severity-triggered migration: a node
/// whose controller has been `Degraded`-or-worse for `streak_threshold`
/// consecutive rounds sheds its heaviest resident to the cheapest healthy
/// node.
#[derive(Debug, Clone)]
pub struct SensitivityMigrate {
    pack: SensitivityPack,
    streak_threshold: u32,
}

impl SensitivityMigrate {
    /// A migrating packer; `streak_threshold` is the sustained-severity
    /// trigger in rounds.
    pub fn new(link_capacity_gbps: f64, n_ways: u32, streak_threshold: u32) -> Self {
        assert!(streak_threshold >= 1);
        Self { pack: SensitivityPack::new(link_capacity_gbps, n_ways), streak_threshold }
    }
}

impl Scheduler for SensitivityMigrate {
    fn name(&self) -> &'static str {
        "sensitivity-migrate"
    }

    fn place(&mut self, views: &[NodeView], arrival: &ArrivalView) -> Option<usize> {
        self.pack.place(views, arrival)
    }

    fn plan_migrations(&mut self, views: &[NodeView], budget: u32) -> Vec<Migration> {
        if budget == 0 {
            return Vec::new();
        }
        let mut plans = Vec::new();
        // Destination slots are consumed as we plan, so one round never
        // over-commits a target node.
        let mut free: Vec<usize> = views.iter().map(|v| v.free_slots).collect();
        for view in views {
            if view.degraded_streak < self.streak_threshold || view.residents.is_empty() {
                continue;
            }
            // Evict the heaviest link load first — the resource whose
            // contention the severity ladder is reporting (lowest position
            // on ties keeps this deterministic).
            let (pos, heaviest) = view
                .residents
                .iter()
                .enumerate()
                .max_by(|(ia, a), (ib, b)| {
                    a.bw_demand.partial_cmp(&b.bw_demand).unwrap().then(ib.cmp(ia))
                })
                .expect("non-empty residents");
            let target = self.pack.cheapest(views, heaviest.ways_need, heaviest.bw_demand, |v| {
                v.node != view.node
                    && v.degraded_streak < self.streak_threshold
                    && free[v.node] > 0
            });
            if let Some(to) = target {
                free[to] -= 1;
                plans.push(Migration { from: view.node, resident: pos, to });
            }
        }
        plans
    }
}

/// Value-level scheduler selector (CLI flags, the study matrix).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// [`RoundRobin`].
    RoundRobin,
    /// [`RandomPlace`].
    Random,
    /// [`SensitivityPack`].
    Pack,
    /// [`SensitivityMigrate`].
    Migrate,
}

impl SchedulerKind {
    /// Every kind, in study order.
    pub const ALL: [SchedulerKind; 4] =
        [SchedulerKind::RoundRobin, SchedulerKind::Random, SchedulerKind::Pack, SchedulerKind::Migrate];

    /// Stable name (CLI value and artifact key).
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::RoundRobin => "round-robin",
            SchedulerKind::Random => "random",
            SchedulerKind::Pack => "sensitivity-pack",
            SchedulerKind::Migrate => "sensitivity-migrate",
        }
    }

    /// Parses a CLI value.
    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.name() == s)
    }

    /// Builds the scheduler for a platform geometry. `seed` only feeds the
    /// seeded baseline; `streak_threshold` only the migrating packer.
    pub fn build(
        self,
        seed: u64,
        link_capacity_gbps: f64,
        n_ways: u32,
        streak_threshold: u32,
    ) -> Box<dyn Scheduler> {
        match self {
            SchedulerKind::RoundRobin => Box::new(RoundRobin::default()),
            SchedulerKind::Random => Box::new(RandomPlace::new(seed)),
            SchedulerKind::Pack => Box::new(SensitivityPack::new(link_capacity_gbps, n_ways)),
            SchedulerKind::Migrate => {
                Box::new(SensitivityMigrate::new(link_capacity_gbps, n_ways, streak_threshold))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(node: usize, free: usize, bw: f64, hp_bw: f64, hp_ways: u32) -> NodeView {
        NodeView {
            node,
            free_slots: free,
            bw_pressure: bw,
            ways_pressure: 4,
            hp_bw_demand: hp_bw,
            hp_ways_need: hp_ways,
            severity: Severity::Nominal,
            degraded_streak: 0,
            residents: Vec::new(),
        }
    }

    fn arrival() -> ArrivalView {
        ArrivalView { pool_idx: 0, ways_need: 2, bw_demand: 20.0 }
    }

    #[test]
    fn round_robin_cycles_and_skips_full_nodes() {
        let mut rr = RoundRobin::default();
        let views = vec![view(0, 1, 0.0, 0.0, 2), view(1, 0, 0.0, 0.0, 2), view(2, 1, 0.0, 0.0, 2)];
        assert_eq!(rr.place(&views, &arrival()), Some(0));
        assert_eq!(rr.place(&views, &arrival()), Some(2), "node 1 is full");
        assert_eq!(rr.place(&views, &arrival()), Some(0));
        let full = vec![view(0, 0, 0.0, 0.0, 2)];
        assert_eq!(rr.place(&full, &arrival()), None);
    }

    #[test]
    fn random_place_is_seeded_and_respects_capacity() {
        let views: Vec<NodeView> = (0..8).map(|i| view(i, 1, 0.0, 0.0, 2)).collect();
        let run = |seed| {
            let mut r = RandomPlace::new(seed);
            (0..16).map(|_| r.place(&views, &arrival())).collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
        let mut r = RandomPlace::new(1);
        let full: Vec<NodeView> = (0..4).map(|i| view(i, 0, 0.0, 0.0, 2)).collect();
        assert_eq!(r.place(&full, &arrival()), None);
    }

    #[test]
    fn packer_avoids_loaded_and_sensitive_nodes() {
        let mut pack = SensitivityPack::new(68.3, 20);
        // Node 0 idle but its HP is very bandwidth-sensitive; node 1 idle
        // with an insensitive HP; node 2 heavily loaded.
        let views = vec![
            view(0, 4, 0.0, 40.0, 3),
            view(1, 4, 0.0, 2.0, 3),
            view(2, 4, 50.0, 2.0, 3),
        ];
        assert_eq!(pack.place(&views, &arrival()), Some(1));
        // Ties break to the lowest node id.
        let tied = vec![view(0, 1, 5.0, 5.0, 4), view(1, 1, 5.0, 5.0, 4)];
        assert_eq!(pack.place(&tied, &arrival()), Some(0));
    }

    #[test]
    fn migrate_sheds_the_heaviest_resident_off_a_degraded_node() {
        let mut m = SensitivityMigrate::new(68.3, 20, 3);
        let mut troubled = view(0, 0, 55.0, 30.0, 3);
        troubled.degraded_streak = 5;
        troubled.residents = vec![
            ResidentView { pool_idx: 1, bw_demand: 10.0, ways_need: 2 },
            ResidentView { pool_idx: 0, bw_demand: 45.0, ways_need: 1 },
        ];
        let views = vec![troubled, view(1, 2, 3.0, 2.0, 2), view(2, 2, 1.0, 2.0, 2)];
        let plans = m.plan_migrations(&views, 1);
        assert_eq!(plans, vec![Migration { from: 0, resident: 1, to: 2 }]);
        // Below the streak threshold nothing moves; zero budget plans nothing.
        let mut calm = views.clone();
        calm[0].degraded_streak = 2;
        assert!(m.plan_migrations(&calm, 1).is_empty());
        assert!(m.plan_migrations(&views, 0).is_empty());
    }

    #[test]
    fn migrate_never_targets_a_degraded_or_full_node() {
        let mut m = SensitivityMigrate::new(68.3, 20, 3);
        let mut troubled = view(0, 0, 55.0, 30.0, 3);
        troubled.degraded_streak = 9;
        troubled.residents = vec![ResidentView { pool_idx: 0, bw_demand: 45.0, ways_need: 1 }];
        let mut also_bad = view(1, 3, 0.0, 0.0, 2);
        also_bad.degraded_streak = 9;
        let full = view(2, 0, 0.0, 0.0, 2);
        let views = vec![troubled, also_bad, full];
        assert!(m.plan_migrations(&views, 2).is_empty(), "no healthy target with a slot");
    }

    #[test]
    fn kind_roundtrip_and_builders() {
        for kind in SchedulerKind::ALL {
            assert_eq!(SchedulerKind::parse(kind.name()), Some(kind));
            let built = kind.build(1, 68.3, 20, 4);
            assert_eq!(built.name(), kind.name());
        }
        assert_eq!(SchedulerKind::parse("nope"), None);
    }
}
