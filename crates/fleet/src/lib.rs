//! The fleet layer: many simulated servers, one placement scheduler.
//!
//! Everything below this crate — [`Server`], [`Session`], the controller
//! registry — simulates *one* consolidated node. The paper's story only
//! pays off at datacenter scale, where a scheduler decides *which* node
//! each best-effort workload lands on; cache sensitivity (the signal DICER
//! computes per node) is exactly the placement input related work exploits
//! (LFOC clusters workloads by measured sensitivity, CBP coordinates
//! per-node resource controllers).
//!
//! A [`Fleet`] owns N independent node sessions and advances them in
//! lock-step **rounds** (one monitoring period per node per round):
//!
//! 1. **departures** — resident BEs whose lifetime expired leave their
//!    node (their retired work stays banked in the throughput totals);
//! 2. **arrivals** — a seeded Poisson stream of BE arrivals, plus scripted
//!    flash-crowd bursts, each routed to a node by the [`Scheduler`];
//! 3. **step** — every node advances one period on the deterministic
//!    [`SweepRunner`] fan-out (`map_mut`), so a parallel fleet is
//!    byte-identical to a serial one at any `--jobs`;
//! 4. **migrations** — the scheduler may evict BEs off nodes whose
//!    controller has reported sustained `Degraded`-or-worse severity (the
//!    `placement-signal` conformance clause pins that this severity ladder
//!    is a stable migration trigger), bounded by a per-node round budget.
//!
//! All cross-node decisions (1, 2 and 4) run serially on the driver
//! thread; only the embarrassingly parallel node stepping fans out. That
//! is the entire determinism argument, and `tests/fleet_determinism.rs`
//! pins it byte-for-byte.
//!
//! [`Server`]: dicer_server::Server
//! [`Session`]: dicer_experiments::Session
//! [`SweepRunner`]: dicer_experiments::SweepRunner

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod fleet;
pub mod outcome;
pub mod pool;
pub mod scheduler;

pub use churn::{Arrival, ChurnConfig, FleetRng};
pub use fleet::{Fleet, FleetConfig, FleetStatus, NodePolicy, NodeStatus};
pub use outcome::{FleetOutcome, NodeOutcome};
pub use pool::{FleetPool, PoolEntry};
pub use scheduler::{
    ArrivalView, Migration, NodeView, RandomPlace, ResidentView, RoundRobin, Scheduler,
    SchedulerKind, SensitivityMigrate, SensitivityPack,
};
