//! Aggregated results of a fleet run, with a byte-stable JSON encoding.
//!
//! [`FleetOutcome`] is the unit the determinism contract is pinned on:
//! `tests/fleet_determinism.rs` requires the *serialized* outcome of a
//! run to be byte-identical across `--jobs` settings, and the bench and
//! study artifacts embed it. The JSON writer is hand-rolled on `format!`
//! (floats through Rust's shortest-roundtrip `Display`), so the bytes
//! depend on nothing but the values.

use dicer_policy::Severity;

/// Per-node slice of a fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeOutcome {
    /// Node id.
    pub node: usize,
    /// Mean HP slowdown over the run, relative to an unloaded reference
    /// node running the same HP under the same controller (1.0 = the
    /// consolidation churn cost this node's HP nothing beyond what the
    /// controller itself costs).
    pub hp_slowdown_mean: f64,
    /// BE instructions retired on this node (departed residents included).
    pub be_retired_insns: f64,
    /// BE completions on this node (departed residents included).
    pub be_completions: u64,
    /// Residents migrated off this node.
    pub migrations_out: u64,
    /// Controller severity at the end of the run.
    pub final_severity: Severity,
}

/// Fleet-wide aggregation of one run under one scheduler.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetOutcome {
    /// Scheduler that placed the workloads.
    pub scheduler: String,
    /// Node count.
    pub nodes: usize,
    /// Rounds simulated.
    pub rounds: u32,
    /// Churn seed.
    pub seed: u64,
    /// Median across nodes of the per-node mean HP slowdown (relative to
    /// each node's unloaded reference, see [`NodeOutcome`]).
    pub hp_slowdown_p50: f64,
    /// 99th percentile across nodes of the per-node mean HP slowdown
    /// (relative, see [`NodeOutcome`]).
    pub hp_slowdown_p99: f64,
    /// Aggregate BE throughput: instructions retired by all BEs anywhere.
    pub be_retired_insns: f64,
    /// Aggregate BE completions.
    pub be_completions: u64,
    /// Arrivals admitted somewhere.
    pub arrivals: u64,
    /// Scheduled departures that happened.
    pub departures: u64,
    /// Arrivals rejected (no node had a free slot).
    pub rejected: u64,
    /// Migrations actually applied.
    pub migrations: u64,
    /// Migrations the fleet refused (budget or capacity).
    pub migrations_skipped: u64,
    /// Largest number of outgoing migrations any node did in one round
    /// (always `<=` the configured budget).
    pub max_node_round_migrations: u32,
    /// Worst severity across nodes at the end of the run.
    pub worst_severity: Severity,
    /// Per-node rows, in node order.
    pub per_node: Vec<NodeOutcome>,
}

impl FleetOutcome {
    /// Byte-stable JSON encoding (see module docs).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.per_node.len() * 96);
        out.push_str("{\n");
        out.push_str(&format!("  \"scheduler\": \"{}\",\n", self.scheduler));
        out.push_str(&format!("  \"nodes\": {},\n", self.nodes));
        out.push_str(&format!("  \"rounds\": {},\n", self.rounds));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"hp_slowdown_p50\": {},\n", self.hp_slowdown_p50));
        out.push_str(&format!("  \"hp_slowdown_p99\": {},\n", self.hp_slowdown_p99));
        out.push_str(&format!("  \"be_retired_insns\": {},\n", self.be_retired_insns));
        out.push_str(&format!("  \"be_completions\": {},\n", self.be_completions));
        out.push_str(&format!("  \"arrivals\": {},\n", self.arrivals));
        out.push_str(&format!("  \"departures\": {},\n", self.departures));
        out.push_str(&format!("  \"rejected\": {},\n", self.rejected));
        out.push_str(&format!("  \"migrations\": {},\n", self.migrations));
        out.push_str(&format!("  \"migrations_skipped\": {},\n", self.migrations_skipped));
        out.push_str(&format!(
            "  \"max_node_round_migrations\": {},\n",
            self.max_node_round_migrations
        ));
        out.push_str(&format!("  \"worst_severity\": \"{}\",\n", self.worst_severity.as_str()));
        out.push_str("  \"per_node\": [\n");
        for (i, row) in self.per_node.iter().enumerate() {
            let comma = if i + 1 < self.per_node.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"node\": {}, \"hp_slowdown_mean\": {}, \"be_retired_insns\": {}, \
                 \"be_completions\": {}, \"migrations_out\": {}, \"final_severity\": \"{}\"}}{comma}\n",
                row.node,
                row.hp_slowdown_mean,
                row.be_retired_insns,
                row.be_completions,
                row.migrations_out,
                row.final_severity.as_str(),
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome() -> FleetOutcome {
        FleetOutcome {
            scheduler: "round-robin".into(),
            nodes: 2,
            rounds: 10,
            seed: 7,
            hp_slowdown_p50: 1.25,
            hp_slowdown_p99: 2.5,
            be_retired_insns: 1000.0,
            be_completions: 3,
            arrivals: 5,
            departures: 2,
            rejected: 1,
            migrations: 1,
            migrations_skipped: 0,
            max_node_round_migrations: 1,
            worst_severity: Severity::Degraded,
            per_node: vec![
                NodeOutcome {
                    node: 0,
                    hp_slowdown_mean: 1.25,
                    be_retired_insns: 600.0,
                    be_completions: 2,
                    migrations_out: 1,
                    final_severity: Severity::Nominal,
                },
                NodeOutcome {
                    node: 1,
                    hp_slowdown_mean: 2.5,
                    be_retired_insns: 400.0,
                    be_completions: 1,
                    migrations_out: 0,
                    final_severity: Severity::Degraded,
                },
            ],
        }
    }

    #[test]
    fn json_is_stable_and_carries_every_field() {
        let o = outcome();
        let json = o.to_json();
        assert_eq!(json, o.clone().to_json(), "pure function of the values");
        for needle in [
            "\"scheduler\": \"round-robin\"",
            "\"hp_slowdown_p99\": 2.5",
            "\"worst_severity\": \"degraded\"",
            "\"per_node\": [",
            "{\"node\": 1, \"hp_slowdown_mean\": 2.5",
            "\"migrations_out\": 1",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.ends_with("]\n}\n"));
    }

    #[test]
    fn json_reflects_value_changes() {
        let a = outcome().to_json();
        let mut changed = outcome();
        changed.hp_slowdown_p99 = 2.5000001;
        assert_ne!(a, changed.to_json(), "every float digit reaches the bytes");
    }
}
