//! The fleet workload pool: hand-built, RNG-free profiles plus the
//! solo-derived placement metadata the schedulers consume.
//!
//! The pool is deliberately *not* drawn from the seeded
//! [`dicer_appmodel::Catalog`]: committed fleet artifacts (goldens, the
//! scheduler study) must be reproducible from source alone, so every
//! profile here is a fixed literal, and the per-entry metadata — solo
//! IPC, the minimum ways for 95 % of solo performance (Fig. 2's
//! quantity), solo bandwidth demand — is *computed* from the same solver
//! the simulator runs on, never estimated.

use dicer_appmodel::{AppProfile, Archetype, MissCurve, Phase};
use dicer_server::{solo, ServerConfig};

/// One pool entry: a profile plus its predicted placement signals.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolEntry {
    /// The workload itself.
    pub profile: AppProfile,
    /// Instruction-weighted solo IPC with the full cache (slowdown
    /// denominator for HPs).
    pub ipc_alone: f64,
    /// Minimum ways reaching 95 % of solo IPC — the predicted cache
    /// sensitivity the bin-packing schedulers use.
    pub ways_need: u32,
    /// Solo memory-bandwidth demand in Gbps with the full cache — the
    /// predicted link pressure the entry adds to a node.
    pub bw_demand: f64,
}

/// The fixed fleet workload pool: a few HP archetypes (one per node,
/// assigned round-robin by node index) and a BE mix the churn stream
/// draws from.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetPool {
    /// Latency-critical (HP) entries.
    pub hps: Vec<PoolEntry>,
    /// Best-effort (BE) entries.
    pub bes: Vec<PoolEntry>,
    /// Index into `bes` of the most bandwidth-hungry entry — the flash
    /// crowd arrives as bursts of this workload.
    pub flash_idx: usize,
}

/// Builds a single-phase profile literal.
fn app(
    name: &str,
    archetype: Archetype,
    insns: u64,
    base_cpi: f64,
    apki: f64,
    mlp: f64,
    curve: MissCurve,
) -> AppProfile {
    AppProfile::new(name, archetype, vec![Phase { insns, base_cpi, apki, mlp, curve }])
}

impl FleetPool {
    /// The standard pool, characterised against `cfg`'s server. All
    /// entries are single-phase and finite, so BEs complete, restart and
    /// keep accumulating completions over a long fleet run.
    pub fn standard(cfg: &ServerConfig) -> Self {
        let hps = vec![
            // Cache-sensitive frontend: most of its performance comes from
            // a healthy LLC share.
            app(
                "hp-web",
                Archetype::CacheSensitive,
                4_000_000_000,
                0.8,
                16.0,
                1.2,
                // The cliff around 8 ways is sharp: a gentle slope would
                // let DICER's shrink probes walk deep into the curve while
                // staying inside the stability band, and the resulting
                // probe-reset cycle would dominate the node's slowdown no
                // matter what the fleet scheduler does.
                MissCurve::parametric(0.06, 0.7, 8.0, 6.0),
            ),
            // Bandwidth-sensitive HP (the paper's milc case): small cache
            // appetite, large link appetite.
            app(
                "hp-milc",
                Archetype::Streaming,
                4_000_000_000,
                0.70,
                28.0,
                4.0,
                MissCurve::parametric(0.45, 0.62, 1.3, 2.0),
            ),
            // Moderately sensitive search tier.
            app(
                "hp-search",
                Archetype::CacheFriendly,
                4_000_000_000,
                0.6,
                10.0,
                2.0,
                MissCurve::parametric(0.10, 0.55, 5.0, 5.0),
            ),
            // Compute-bound service: hard to hurt through the memory system.
            app("hp-api", Archetype::ComputeBound, 4_000_000_000, 0.5, 4.0, 1.5, MissCurve::flat(0.08)),
        ];
        let bes = vec![
            app("be-stream", Archetype::Streaming, 3_000_000_000, 0.6, 30.0, 3.5, MissCurve::flat(0.8)),
            app("be-gcc", Archetype::CacheFriendly, 2_500_000_000, 0.65, 24.0, 2.4, MissCurve::flat(0.35)),
            app(
                "be-analytics",
                Archetype::Streaming,
                3_000_000_000,
                0.7,
                20.0,
                3.0,
                MissCurve::flat(0.55),
            ),
            app(
                "be-compress",
                Archetype::CacheFriendly,
                2_000_000_000,
                0.55,
                12.0,
                2.0,
                MissCurve::parametric(0.15, 0.6, 4.0, 2.0),
            ),
            app(
                "be-ml",
                Archetype::CacheSensitive,
                3_500_000_000,
                0.75,
                18.0,
                2.5,
                MissCurve::parametric(0.3, 0.5, 2.0, 2.0),
            ),
            app("be-batch", Archetype::CacheFriendly, 2_000_000_000, 0.5, 6.0, 1.5, MissCurve::flat(0.15)),
            app("be-log", Archetype::ComputeBound, 1_500_000_000, 0.45, 3.0, 1.2, MissCurve::flat(0.05)),
            app(
                "be-kv",
                Archetype::CacheSensitive,
                2_200_000_000,
                0.6,
                14.0,
                1.8,
                MissCurve::parametric(0.08, 0.65, 6.0, 2.0),
            ),
        ];
        let hps: Vec<PoolEntry> = hps.into_iter().map(|p| characterise(p, cfg)).collect();
        let bes: Vec<PoolEntry> = bes.into_iter().map(|p| characterise(p, cfg)).collect();
        let flash_idx = bes
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.bw_demand.partial_cmp(&b.bw_demand).unwrap())
            .map(|(i, _)| i)
            .expect("non-empty pool");
        Self { hps, bes, flash_idx }
    }
}

/// Computes the placement metadata for one profile by solo-profiling it
/// on the target server configuration.
fn characterise(profile: AppProfile, cfg: &ServerConfig) -> PoolEntry {
    let solo = solo::profile(&profile, cfg);
    let ways_need = solo.min_ways_for(0.95);
    let phase = &profile.phases[0];
    let bw_demand = phase.demand_gbps(
        solo.ipc_alone,
        cfg.cache.ways as f64,
        cfg.freq_hz,
        cfg.cache.line_bytes,
    );
    PoolEntry { profile, ipc_alone: solo.ipc_alone, ways_need, bw_demand }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_pool_characterisation_is_sane() {
        let pool = FleetPool::standard(&ServerConfig::table1());
        assert_eq!(pool.hps.len(), 4);
        assert_eq!(pool.bes.len(), 8);
        for e in pool.hps.iter().chain(&pool.bes) {
            assert!(e.ipc_alone > 0.0 && e.ipc_alone.is_finite(), "{}", e.profile.name);
            assert!((1..=20).contains(&e.ways_need), "{}: {}", e.profile.name, e.ways_need);
            assert!(e.bw_demand >= 0.0 && e.bw_demand.is_finite());
        }
        let by_name = |n: &str| pool.hps.iter().chain(&pool.bes).find(|e| e.profile.name == n).unwrap();
        // The cache-sensitive HP needs substantially more ways than the
        // bandwidth hog, and the hog out-demands it on the link.
        assert!(by_name("hp-web").ways_need > by_name("hp-milc").ways_need);
        assert!(by_name("be-stream").bw_demand > by_name("be-log").bw_demand * 5.0);
        // Flash crowds burst the heaviest link load in the BE pool.
        let flash = &pool.bes[pool.flash_idx];
        assert!(pool.bes.iter().all(|e| e.bw_demand <= flash.bw_demand));
    }

    #[test]
    fn characterisation_is_deterministic() {
        let cfg = ServerConfig::table1();
        assert_eq!(FleetPool::standard(&cfg), FleetPool::standard(&cfg));
    }
}
