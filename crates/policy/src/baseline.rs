//! The paper's baseline co-location policies (§2.2) plus static splits.

use crate::Policy;
use dicer_rdt::{PartitionPlan, PeriodSample};

/// **UM** — unmanaged: no CAT control, no QoS enforcement; all applications
/// contend freely for the LLC and the memory link.
#[derive(Debug, Clone, Copy, Default)]
pub struct Unmanaged;

impl Policy for Unmanaged {
    fn name(&self) -> &'static str {
        "UM"
    }

    fn initial_plan(&self, _n_ways: u32) -> PartitionPlan {
        PartitionPlan::Unmanaged
    }

    fn on_period(&mut self, _sample: &PeriodSample, _n_ways: u32) -> PartitionPlan {
        PartitionPlan::Unmanaged
    }
}

/// **CT** — cache takeover: HP statically owns the maximum isolatable LLC
/// portion (all ways but one); every BE shares the single remaining way.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheTakeover;

impl Policy for CacheTakeover {
    fn name(&self) -> &'static str {
        "CT"
    }

    fn initial_plan(&self, n_ways: u32) -> PartitionPlan {
        PartitionPlan::cache_takeover(n_ways)
    }

    fn on_period(&mut self, _sample: &PeriodSample, n_ways: u32) -> PartitionPlan {
        PartitionPlan::cache_takeover(n_ways)
    }
}

/// A fixed `Split { hp_ways }` for the static-sweep analysis of Fig. 3.
#[derive(Debug, Clone, Copy)]
pub struct StaticPartition {
    hp_ways: u32,
}

impl StaticPartition {
    /// Fixed split granting `hp_ways` exclusive ways to HP.
    pub fn new(hp_ways: u32) -> Self {
        assert!(hp_ways >= 1, "HP needs at least one way");
        Self { hp_ways }
    }

    /// The configured HP allocation.
    pub fn hp_ways(&self) -> u32 {
        self.hp_ways
    }
}

impl Policy for StaticPartition {
    fn name(&self) -> &'static str {
        "STATIC"
    }

    fn initial_plan(&self, n_ways: u32) -> PartitionPlan {
        let p = PartitionPlan::Split { hp_ways: self.hp_ways };
        p.validate(n_ways).expect("static split must fit the cache");
        p
    }

    fn on_period(&mut self, _sample: &PeriodSample, n_ways: u32) -> PartitionPlan {
        self.initial_plan(n_ways)
    }
}

/// A fixed overlapping plan for the paper's §6 open question: HP keeps
/// `hp_exclusive` private ways and contests a `shared` middle region with
/// the BEs.
#[derive(Debug, Clone, Copy)]
pub struct StaticOverlap {
    hp_exclusive: u32,
    shared: u32,
}

impl StaticOverlap {
    /// Fixed overlap plan.
    pub fn new(hp_exclusive: u32, shared: u32) -> Self {
        assert!(hp_exclusive >= 1 && shared >= 1);
        Self { hp_exclusive, shared }
    }
}

impl Policy for StaticOverlap {
    fn name(&self) -> &'static str {
        "OVERLAP"
    }

    fn initial_plan(&self, n_ways: u32) -> PartitionPlan {
        let p = PartitionPlan::Overlapping { hp_exclusive: self.hp_exclusive, shared: self.shared };
        p.validate(n_ways).expect("overlap plan must fit the cache");
        p
    }

    fn on_period(&mut self, _sample: &PeriodSample, n_ways: u32) -> PartitionPlan {
        self.initial_plan(n_ways)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dicer_rdt::PerAppSample;

    fn sample() -> PeriodSample {
        let app = PerAppSample { ipc: 1.0, llc_occupancy_bytes: 0, mem_bw_gbps: 1.0, miss_ratio: 0.1 };
        PeriodSample { time_s: 1.0, hp: app, bes: vec![app], total_bw_gbps: 2.0 }
    }

    #[test]
    fn um_never_partitions() {
        let mut p = Unmanaged;
        assert_eq!(p.initial_plan(20), PartitionPlan::Unmanaged);
        assert_eq!(p.on_period(&sample(), 20), PartitionPlan::Unmanaged);
    }

    #[test]
    fn ct_takes_all_but_one() {
        let mut p = CacheTakeover;
        assert_eq!(p.initial_plan(20), PartitionPlan::Split { hp_ways: 19 });
        assert_eq!(p.on_period(&sample(), 20), PartitionPlan::Split { hp_ways: 19 });
    }

    #[test]
    fn static_holds_its_split() {
        let mut p = StaticPartition::new(7);
        assert_eq!(p.initial_plan(20), PartitionPlan::Split { hp_ways: 7 });
        assert_eq!(p.on_period(&sample(), 20), PartitionPlan::Split { hp_ways: 7 });
    }

    #[test]
    #[should_panic]
    fn static_rejects_oversized_split() {
        StaticPartition::new(20).initial_plan(20);
    }

    #[test]
    fn overlap_holds_its_plan() {
        let mut p = StaticOverlap::new(4, 6);
        assert_eq!(
            p.on_period(&sample(), 20),
            PartitionPlan::Overlapping { hp_exclusive: 4, shared: 6 }
        );
    }

    #[test]
    #[should_panic]
    fn overlap_rejects_oversized_plan() {
        StaticOverlap::new(15, 6).initial_plan(20);
    }
}
