//! DICER+MBA: the paper's future-work extension ("We are extending DICER to
//! explicitly, dynamically control the memory bandwidth, using Intel's
//! MBA").
//!
//! [`DicerMba`] wraps the stock [`Dicer`] cache controller and adds a
//! bandwidth loop: when the link stays saturated even though sampling
//! already concluded that no partitioning fixes it, the BE class's MBA
//! level is tightened one step per period; once the link has been below the
//! threshold for a few consecutive periods, the throttle is relaxed again.
//! Cache decisions are unchanged — the two actuators compose.

use crate::controller::{Controller, Decision, Observation, Severity, Summary};
use crate::{dicer::Dicer, DicerConfig, Policy};
use dicer_rdt::{MbaLevel, PartitionPlan, PeriodSample};
use dicer_telemetry::{ControllerEvent, Telemetry, TelemetryEvent};

/// Consecutive unsaturated periods required before relaxing the throttle.
const RELAX_AFTER: u32 = 3;

/// Where the bandwidth governor's own (two-state) machine stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MbaState {
    /// The BE class runs at the full MBA level.
    Unthrottled,
    /// The BE class is throttled below 100%.
    Throttled,
}

impl MbaState {
    /// Stable snake_case label.
    pub fn as_str(self) -> &'static str {
        match self {
            MbaState::Unthrottled => "unthrottled",
            MbaState::Throttled => "throttled",
        }
    }
}

/// DICER with dynamic Memory Bandwidth Allocation on the BE class.
#[derive(Debug, Clone)]
pub struct DicerMba {
    inner: Dicer,
    threshold_gbps: f64,
    level: MbaLevel,
    calm_periods: u32,
    telemetry: Telemetry,
    /// Throttle adjustments performed (for introspection/ablation).
    pub throttle_changes: u64,
}

impl DicerMba {
    /// Builds the extended controller from a stock DICER configuration.
    pub fn new(cfg: DicerConfig) -> Self {
        let threshold_gbps = cfg.mem_bw_threshold_gbps;
        Self {
            inner: Dicer::new(cfg),
            threshold_gbps,
            level: MbaLevel::FULL,
            calm_periods: 0,
            telemetry: Telemetry::off(),
            throttle_changes: 0,
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        "DICER+MBA"
    }

    /// Same Listing 1 preamble as stock DICER.
    pub fn initial_plan(&self, n_ways: u32) -> PartitionPlan {
        self.inner.initial_plan(n_ways)
    }

    /// Attach a telemetry handle (shared with the cache loop).
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry.clone();
        self.inner.set_telemetry(telemetry);
    }

    /// The underlying cache controller.
    pub fn cache_controller(&self) -> &Dicer {
        &self.inner
    }

    /// Currently requested BE throttle.
    pub fn level(&self) -> MbaLevel {
        self.level
    }

    /// The governor's own state (the cache loop keeps its own; see
    /// [`Dicer::state`]).
    pub fn governor_state(&self) -> MbaState {
        if self.level.is_throttled() { MbaState::Throttled } else { MbaState::Unthrottled }
    }

    /// Coarse severity: the cache loop's verdict, raised while the BE class
    /// is throttled (floor throttle counts as degraded service).
    pub fn severity(&self) -> Severity {
        let governor = if self.level == MbaLevel::MIN {
            Severity::Degraded
        } else if self.level.is_throttled() {
            Severity::Adjusting
        } else {
            Severity::Nominal
        };
        self.inner.severity().max(governor)
    }

    fn note(&self, event: ControllerEvent) {
        self.telemetry
            .emit(&TelemetryEvent::Controller { period: self.inner.periods_seen(), event });
    }

    /// One governor step over a delivered sample: cache loop first, then the
    /// bandwidth loop (tighten under BE-dominated persistent saturation,
    /// relax after calm). The single implementation behind both facades.
    pub fn on_period(&mut self, sample: &PeriodSample, n_ways: u32) -> PartitionPlan {
        let plan = self.inner.on_period(sample, n_ways);
        let saturated = sample.total_bw_gbps > self.threshold_gbps;
        if saturated {
            self.calm_periods = 0;
            // Only throttle when the cache loop has already given up on
            // fixing the saturation by partitioning (it is not sampling) and
            // the BEs are the dominant consumers.
            let bes_dominate = sample.be_bw_gbps() > sample.hp.mem_bw_gbps;
            if self.inner.state() != crate::DicerState::Sampling && bes_dominate {
                let next = self.level.tighten();
                if next != self.level {
                    self.level = next;
                    self.throttle_changes += 1;
                    self.note(ControllerEvent::ThrottleTightened { percent: next.percent() });
                }
            }
        } else {
            self.calm_periods += 1;
            if self.calm_periods >= RELAX_AFTER {
                let next = self.level.relax();
                if next != self.level {
                    self.level = next;
                    self.throttle_changes += 1;
                    self.note(ControllerEvent::ThrottleRelaxed { percent: next.percent() });
                }
                self.calm_periods = 0;
            }
        }
        plan
    }

    /// Missing-sample holdover: no counters, no saturation verdict — the
    /// throttle holds while the cache controller advances its own
    /// missing-period bookkeeping.
    pub fn on_missing_period(&mut self, n_ways: u32) -> PartitionPlan {
        self.inner.on_missing_period(n_ways)
    }
}

impl Controller for DicerMba {
    fn name(&self) -> &'static str {
        "DICER+MBA"
    }

    fn initial_plan(&self, n_ways: u32) -> PartitionPlan {
        DicerMba::initial_plan(self, n_ways)
    }

    fn observe_and_update(&mut self, obs: &Observation<'_>) -> Decision {
        let plan = match obs.sample {
            Some(sample) => DicerMba::on_period(self, sample, obs.n_ways),
            None => DicerMba::on_missing_period(self, obs.n_ways),
        };
        Decision { plan, mba_level: self.level, admitted_bes: None }
    }

    fn summary(&self) -> Summary {
        Summary {
            mba_level: self.level,
            severity: self.severity(),
            name: "DICER+MBA",
            ..Controller::summary(&self.inner)
        }
    }

    fn set_telemetry(&mut self, telemetry: Telemetry) {
        DicerMba::set_telemetry(self, telemetry);
    }
}

impl Policy for DicerMba {
    fn name(&self) -> &'static str {
        "DICER+MBA"
    }

    fn initial_plan(&self, n_ways: u32) -> PartitionPlan {
        DicerMba::initial_plan(self, n_ways)
    }

    fn on_missing_period(&mut self, n_ways: u32) -> PartitionPlan {
        self.observe_and_update(&Observation::missing(n_ways)).plan
    }

    fn on_period(&mut self, sample: &PeriodSample, n_ways: u32) -> PartitionPlan {
        self.observe_and_update(&Observation::delivered(sample, n_ways)).plan
    }

    fn mba_level(&self) -> MbaLevel {
        self.level
    }

    fn set_telemetry(&mut self, telemetry: Telemetry) {
        DicerMba::set_telemetry(self, telemetry);
    }

    fn state_label(&self) -> Option<&'static str> {
        Some(self.inner.state().as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dicer_rdt::PerAppSample;

    const N: u32 = 20;

    fn sample(hp_ipc: f64, hp_bw: f64, be_bw_total: f64) -> PeriodSample {
        let hp = PerAppSample { ipc: hp_ipc, llc_occupancy_bytes: 0, mem_bw_gbps: hp_bw, miss_ratio: 0.1 };
        let be = PerAppSample { ipc: 0.5, llc_occupancy_bytes: 0, mem_bw_gbps: be_bw_total / 9.0, miss_ratio: 0.4 };
        PeriodSample { time_s: 0.0, hp, bes: vec![be; 9], total_bw_gbps: hp_bw + be_bw_total }
    }

    #[test]
    fn starts_unthrottled() {
        let d = DicerMba::new(DicerConfig::default());
        assert_eq!(d.mba_level(), MbaLevel::FULL);
    }

    #[test]
    fn does_not_throttle_while_sampling() {
        let mut d = DicerMba::new(DicerConfig::default());
        d.initial_plan(N);
        // First saturated period sends the cache loop into sampling; the
        // bandwidth loop must hold off while probes are in flight.
        d.on_period(&sample(1.0, 5.0, 55.0), N);
        assert_eq!(d.mba_level(), MbaLevel::FULL);
    }

    #[test]
    fn tightens_under_persistent_saturation() {
        let mut d = DicerMba::new(DicerConfig::default());
        d.initial_plan(N);
        d.on_period(&sample(1.0, 5.0, 55.0), N); // -> sampling
        // Finish the sampling sweep (7 candidates), unsaturated readings.
        for _ in 0..7 {
            d.on_period(&sample(1.0, 5.0, 20.0), N);
        }
        // Persistent saturation afterwards (cache loop is in cool-down).
        for _ in 0..4 {
            d.on_period(&sample(1.0, 5.0, 60.0), N);
        }
        assert!(d.mba_level().is_throttled(), "should have tightened: {}", d.mba_level());
        assert!(d.throttle_changes >= 3);
    }

    #[test]
    fn relaxes_after_calm_periods() {
        let mut d = DicerMba::new(DicerConfig::default());
        d.initial_plan(N);
        d.on_period(&sample(1.0, 5.0, 55.0), N);
        for _ in 0..7 {
            d.on_period(&sample(1.0, 5.0, 20.0), N);
        }
        for _ in 0..3 {
            d.on_period(&sample(1.0, 5.0, 60.0), N);
        }
        let tightened = d.mba_level();
        assert!(tightened.is_throttled());
        // Calm traffic: relaxes one step per RELAX_AFTER periods.
        for _ in 0..3 * RELAX_AFTER {
            d.on_period(&sample(1.0, 5.0, 10.0), N);
        }
        assert!(d.mba_level() > tightened, "should relax: {}", d.mba_level());
    }

    #[test]
    fn never_throttles_an_hp_dominated_link() {
        let mut d = DicerMba::new(DicerConfig::default());
        d.initial_plan(N);
        d.on_period(&sample(1.0, 40.0, 12.0), N); // HP is the heavy one -> sampling
        for _ in 0..7 {
            d.on_period(&sample(1.0, 40.0, 5.0), N);
        }
        for _ in 0..5 {
            d.on_period(&sample(1.0, 40.0, 12.0), N); // saturated, HP-dominated
        }
        assert_eq!(d.mba_level(), MbaLevel::FULL, "must not punish BEs for HP traffic");
    }

    #[test]
    fn cache_decisions_match_stock_dicer() {
        // With an unsaturated trace, DICER+MBA must emit exactly the same
        // partition plans as stock DICER.
        let mut a = DicerMba::new(DicerConfig::default());
        let mut b = Dicer::new(DicerConfig::default());
        a.initial_plan(N);
        b.initial_plan(N);
        for i in 0..30 {
            let s = sample(1.0 + (i % 3) as f64 * 0.01, 5.0, 20.0);
            assert_eq!(a.on_period(&s, N), b.on_period(&s, N));
        }
    }
}
