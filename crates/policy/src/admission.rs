//! DICER+ADM: the paper's second future-work extension — "extend DICER to
//! dynamically manage the number of co-located BEs".
//!
//! [`DicerAdmission`] stacks a BE admission loop on top of [`DicerMba`]:
//! when even maximum MBA throttling leaves the link saturated for several
//! consecutive periods, one BE is evicted from the server; once the
//! throttle has fully relaxed and the link has stayed calm, a BE is
//! re-admitted. Escalation order is deliberate — cache first (DICER), then
//! bandwidth (MBA), then parallelism (admission) — since each next actuator
//! costs the BEs more throughput.

use crate::{mba::DicerMba, DicerConfig, Policy};
use dicer_rdt::{MbaLevel, PartitionPlan, PeriodSample};

/// Consecutive periods of throttled near-saturation hovering before a BE is
/// evicted. Long enough that the MBA loop has clearly reached its stable
/// hover rather than a transient.
const EVICT_AFTER: u32 = 15;
/// Fraction of the saturation threshold above which the link counts as
/// "hovering": the MBA loop pins traffic just around the threshold, so the
/// eviction detector must look slightly below it.
const HOVER_FRACTION: f64 = 0.9;
/// Re-admission hysteresis: the link must sit below this fraction of the
/// threshold, unthrottled, before a BE returns — otherwise the controller
/// would oscillate between eviction and re-admission.
const READMIT_FRACTION: f64 = 0.7;
/// Consecutive calm, unthrottled periods before re-admitting a BE.
const READMIT_AFTER: u32 = 10;

/// DICER with MBA throttling and dynamic BE admission.
#[derive(Debug, Clone)]
pub struct DicerAdmission {
    inner: DicerMba,
    threshold_gbps: f64,
    /// BEs currently admitted (`None` until the first period reveals the
    /// workload size).
    admitted: Option<u32>,
    total_bes: u32,
    hot_periods: u32,
    calm_periods: u32,
    /// Evictions and re-admissions performed (for introspection).
    pub admission_changes: u64,
}

impl DicerAdmission {
    /// Builds the stacked controller.
    pub fn new(cfg: DicerConfig) -> Self {
        let threshold_gbps = cfg.mem_bw_threshold_gbps;
        Self {
            inner: DicerMba::new(cfg),
            threshold_gbps,
            admitted: None,
            total_bes: 0,
            hot_periods: 0,
            calm_periods: 0,
            admission_changes: 0,
        }
    }

    /// Currently admitted BE count (`None` before the first observation).
    pub fn admitted(&self) -> Option<u32> {
        self.admitted
    }
}

impl Policy for DicerAdmission {
    fn name(&self) -> &'static str {
        "DICER+ADM"
    }

    fn initial_plan(&self, n_ways: u32) -> PartitionPlan {
        self.inner.initial_plan(n_ways)
    }

    fn on_missing_period(&mut self, n_ways: u32) -> PartitionPlan {
        // Admission state holds over a dropped sample (evicting a BE on no
        // evidence would be destructive); the inner stack still advances.
        Policy::on_missing_period(&mut self.inner, n_ways)
    }

    fn on_period(&mut self, sample: &PeriodSample, n_ways: u32) -> PartitionPlan {
        let plan = self.inner.on_period(sample, n_ways);
        self.total_bes = sample.bes.len() as u32;
        let admitted = *self.admitted.get_or_insert(self.total_bes);

        // "Hovering": bandwidth control is engaged yet the link still sits
        // at (or just below — the loop pins it there) the threshold, so the
        // HP keeps paying the queueing penalty.
        let hovering = self.inner.level().is_throttled()
            && sample.total_bw_gbps > HOVER_FRACTION * self.threshold_gbps;
        let calm = !self.inner.level().is_throttled()
            && sample.total_bw_gbps < READMIT_FRACTION * self.threshold_gbps;
        if hovering {
            self.hot_periods += 1;
            self.calm_periods = 0;
            if self.hot_periods >= EVICT_AFTER && admitted > 1 {
                self.admitted = Some(admitted - 1);
                self.admission_changes += 1;
                self.hot_periods = 0;
            }
        } else if calm {
            self.calm_periods += 1;
            self.hot_periods = 0;
            if self.calm_periods >= READMIT_AFTER && admitted < self.total_bes {
                self.admitted = Some(admitted + 1);
                self.admission_changes += 1;
                self.calm_periods = 0;
            }
        } else {
            self.hot_periods = 0;
            self.calm_periods = 0;
        }
        plan
    }

    fn mba_level(&self) -> MbaLevel {
        self.inner.mba_level()
    }

    fn admitted_bes(&self) -> Option<u32> {
        self.admitted
    }

    fn set_telemetry(&mut self, telemetry: dicer_telemetry::Telemetry) {
        self.inner.set_telemetry(telemetry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dicer_rdt::PerAppSample;

    const N: u32 = 20;

    fn sample(hp_ipc: f64, be_bw_total: f64, n_bes: usize) -> PeriodSample {
        let hp = PerAppSample { ipc: hp_ipc, llc_occupancy_bytes: 0, mem_bw_gbps: 5.0, miss_ratio: 0.1 };
        let be = PerAppSample {
            ipc: 0.5,
            llc_occupancy_bytes: 0,
            mem_bw_gbps: be_bw_total / n_bes as f64,
            miss_ratio: 0.4,
        };
        PeriodSample { time_s: 0.0, hp, bes: vec![be; n_bes], total_bw_gbps: 5.0 + be_bw_total }
    }

    /// Drives the controller into the throttled near-saturation hover.
    fn drive_to_hover(d: &mut DicerAdmission) {
        d.initial_plan(N);
        d.on_period(&sample(1.0, 55.0, 9), N); // -> sampling
        for _ in 0..7 {
            d.on_period(&sample(1.0, 20.0, 9), N); // sweep, calm readings
        }
        // Persistent saturation engages the throttle.
        for _ in 0..3 {
            d.on_period(&sample(1.0, 60.0, 9), N);
        }
        assert!(d.mba_level().is_throttled());
    }

    #[test]
    fn starts_with_everything_admitted() {
        let mut d = DicerAdmission::new(DicerConfig::default());
        d.initial_plan(N);
        d.on_period(&sample(1.0, 10.0, 9), N);
        assert_eq!(d.admitted(), Some(9));
    }

    #[test]
    fn evicts_after_sustained_throttled_hover() {
        let mut d = DicerAdmission::new(DicerConfig::default());
        drive_to_hover(&mut d);
        let before = d.admitted().unwrap();
        // Traffic hovers just below the threshold while throttled.
        for _ in 0..EVICT_AFTER {
            d.on_period(&sample(1.0, 47.0, 9), N);
        }
        assert_eq!(d.admitted(), Some(before - 1), "one BE evicted");
        assert!(d.admission_changes >= 1);
    }

    #[test]
    fn never_evicts_below_one_be() {
        let mut d = DicerAdmission::new(DicerConfig::default());
        drive_to_hover(&mut d);
        for _ in 0..20 * EVICT_AFTER {
            d.on_period(&sample(1.0, 60.0, 9), N);
        }
        assert_eq!(d.admitted(), Some(1), "floor is one BE");
    }

    #[test]
    fn readmits_after_sustained_calm() {
        let mut d = DicerAdmission::new(DicerConfig::default());
        drive_to_hover(&mut d);
        for _ in 0..EVICT_AFTER {
            d.on_period(&sample(1.0, 47.0, 9), N);
        }
        let evicted_to = d.admitted().unwrap();
        assert!(evicted_to < 9);
        // Calm traffic (below the re-admission hysteresis) long enough to
        // fully relax MBA and pass the re-admission bar.
        for _ in 0..100 {
            d.on_period(&sample(1.0, 5.0, 9), N);
        }
        assert!(d.admitted().unwrap() > evicted_to, "BE re-admitted after calm");
    }

    #[test]
    fn no_admission_changes_on_quiet_workloads() {
        let mut d = DicerAdmission::new(DicerConfig::default());
        d.initial_plan(N);
        for _ in 0..50 {
            d.on_period(&sample(1.0, 10.0, 9), N);
        }
        assert_eq!(d.admitted(), Some(9));
        assert_eq!(d.admission_changes, 0);
    }
}
