//! DICER+ADM: the paper's second future-work extension — "extend DICER to
//! dynamically manage the number of co-located BEs".
//!
//! [`DicerAdmission`] stacks a BE admission loop on top of [`DicerMba`]:
//! when even maximum MBA throttling leaves the link saturated for several
//! consecutive periods, one BE is evicted from the server; once the
//! throttle has fully relaxed and the link has stayed calm, a BE is
//! re-admitted. Escalation order is deliberate — cache first (DICER), then
//! bandwidth (MBA), then parallelism (admission) — since each next actuator
//! costs the BEs more throughput.

use crate::controller::{Controller, Decision, Observation, Severity, Summary};
use crate::{mba::DicerMba, DicerConfig, Policy};
use dicer_rdt::{MbaLevel, PartitionPlan, PeriodSample};
use dicer_telemetry::{ControllerEvent, Telemetry, TelemetryEvent};

/// Consecutive periods of throttled near-saturation hovering before a BE is
/// evicted. Long enough that the MBA loop has clearly reached its stable
/// hover rather than a transient.
const EVICT_AFTER: u32 = 15;
/// Fraction of the saturation threshold above which the link counts as
/// "hovering": the MBA loop pins traffic just around the threshold, so the
/// eviction detector must look slightly below it.
const HOVER_FRACTION: f64 = 0.9;
/// Re-admission hysteresis: the link must sit below this fraction of the
/// threshold, unthrottled, before a BE returns — otherwise the controller
/// would oscillate between eviction and re-admission.
const READMIT_FRACTION: f64 = 0.7;
/// Consecutive calm, unthrottled periods before re-admitting a BE.
const READMIT_AFTER: u32 = 10;

/// Where the admission loop's own (two-state) machine stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionState {
    /// Every BE of the workload is admitted.
    Full,
    /// At least one BE has been evicted.
    Shedding,
}

impl AdmissionState {
    /// Stable snake_case label.
    pub fn as_str(self) -> &'static str {
        match self {
            AdmissionState::Full => "full",
            AdmissionState::Shedding => "shedding",
        }
    }
}

/// DICER with MBA throttling and dynamic BE admission.
#[derive(Debug, Clone)]
pub struct DicerAdmission {
    inner: DicerMba,
    threshold_gbps: f64,
    /// BEs currently admitted (`None` until the first period reveals the
    /// workload size).
    admitted: Option<u32>,
    total_bes: u32,
    hot_periods: u32,
    calm_periods: u32,
    telemetry: Telemetry,
    /// Evictions and re-admissions performed (for introspection).
    pub admission_changes: u64,
}

impl DicerAdmission {
    /// Builds the stacked controller.
    pub fn new(cfg: DicerConfig) -> Self {
        let threshold_gbps = cfg.mem_bw_threshold_gbps;
        Self {
            inner: DicerMba::new(cfg),
            threshold_gbps,
            admitted: None,
            total_bes: 0,
            hot_periods: 0,
            calm_periods: 0,
            telemetry: Telemetry::off(),
            admission_changes: 0,
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        "DICER+ADM"
    }

    /// Same Listing 1 preamble as stock DICER.
    pub fn initial_plan(&self, n_ways: u32) -> PartitionPlan {
        self.inner.initial_plan(n_ways)
    }

    /// Attach a telemetry handle (shared with the whole stack).
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry.clone();
        self.inner.set_telemetry(telemetry);
    }

    /// Currently admitted BE count (`None` before the first observation).
    pub fn admitted(&self) -> Option<u32> {
        self.admitted
    }

    /// The bandwidth-governing middle layer.
    pub fn governor(&self) -> &DicerMba {
        &self.inner
    }

    /// The admission loop's own state (the cache and bandwidth loops keep
    /// theirs; see [`crate::Dicer::state`] and [`DicerMba::governor_state`]).
    pub fn admission_state(&self) -> AdmissionState {
        match (self.admitted, self.total_bes) {
            (Some(a), t) if a < t => AdmissionState::Shedding,
            _ => AdmissionState::Full,
        }
    }

    /// Coarse severity: shedding load is critical by definition; otherwise
    /// the inner stack's verdict stands.
    pub fn severity(&self) -> Severity {
        let admission = match self.admission_state() {
            AdmissionState::Shedding => Severity::Critical,
            AdmissionState::Full => Severity::Nominal,
        };
        self.inner.severity().max(admission)
    }

    fn note(&self, event: ControllerEvent) {
        self.telemetry.emit(&TelemetryEvent::Controller {
            period: self.inner.cache_controller().periods_seen(),
            event,
        });
    }

    /// One admission step over a delivered sample: the inner stack first,
    /// then the eviction/re-admission hysteresis. The single implementation
    /// behind both facades.
    pub fn on_period(&mut self, sample: &PeriodSample, n_ways: u32) -> PartitionPlan {
        let plan = self.inner.on_period(sample, n_ways);
        self.total_bes = sample.bes.len() as u32;
        let admitted = *self.admitted.get_or_insert(self.total_bes);

        // "Hovering": bandwidth control is engaged yet the link still sits
        // at (or just below — the loop pins it there) the threshold, so the
        // HP keeps paying the queueing penalty.
        let hovering = self.inner.level().is_throttled()
            && sample.total_bw_gbps > HOVER_FRACTION * self.threshold_gbps;
        let calm = !self.inner.level().is_throttled()
            && sample.total_bw_gbps < READMIT_FRACTION * self.threshold_gbps;
        if hovering {
            self.hot_periods += 1;
            self.calm_periods = 0;
            if self.hot_periods >= EVICT_AFTER && admitted > 1 {
                self.admitted = Some(admitted - 1);
                self.admission_changes += 1;
                self.hot_periods = 0;
                self.note(ControllerEvent::BeEvicted { admitted: admitted - 1 });
            }
        } else if calm {
            self.calm_periods += 1;
            self.hot_periods = 0;
            if self.calm_periods >= READMIT_AFTER && admitted < self.total_bes {
                self.admitted = Some(admitted + 1);
                self.admission_changes += 1;
                self.calm_periods = 0;
                self.note(ControllerEvent::BeReadmitted { admitted: admitted + 1 });
            }
        } else {
            self.hot_periods = 0;
            self.calm_periods = 0;
        }
        plan
    }

    /// Missing-sample holdover: admission state holds over a dropped sample
    /// (evicting a BE on no evidence would be destructive); the inner stack
    /// still advances.
    pub fn on_missing_period(&mut self, n_ways: u32) -> PartitionPlan {
        self.inner.on_missing_period(n_ways)
    }
}

impl Controller for DicerAdmission {
    fn name(&self) -> &'static str {
        "DICER+ADM"
    }

    fn initial_plan(&self, n_ways: u32) -> PartitionPlan {
        DicerAdmission::initial_plan(self, n_ways)
    }

    fn observe_and_update(&mut self, obs: &Observation<'_>) -> Decision {
        let plan = match obs.sample {
            Some(sample) => DicerAdmission::on_period(self, sample, obs.n_ways),
            None => DicerAdmission::on_missing_period(self, obs.n_ways),
        };
        Decision { plan, mba_level: self.inner.level(), admitted_bes: self.admitted }
    }

    fn summary(&self) -> Summary {
        Summary {
            admitted_bes: self.admitted,
            severity: self.severity(),
            name: "DICER+ADM",
            ..Controller::summary(&self.inner)
        }
    }

    fn set_telemetry(&mut self, telemetry: Telemetry) {
        DicerAdmission::set_telemetry(self, telemetry);
    }
}

impl Policy for DicerAdmission {
    fn name(&self) -> &'static str {
        "DICER+ADM"
    }

    fn initial_plan(&self, n_ways: u32) -> PartitionPlan {
        DicerAdmission::initial_plan(self, n_ways)
    }

    fn on_missing_period(&mut self, n_ways: u32) -> PartitionPlan {
        self.observe_and_update(&Observation::missing(n_ways)).plan
    }

    fn on_period(&mut self, sample: &PeriodSample, n_ways: u32) -> PartitionPlan {
        self.observe_and_update(&Observation::delivered(sample, n_ways)).plan
    }

    fn mba_level(&self) -> MbaLevel {
        self.inner.level()
    }

    fn admitted_bes(&self) -> Option<u32> {
        self.admitted
    }

    fn set_telemetry(&mut self, telemetry: Telemetry) {
        DicerAdmission::set_telemetry(self, telemetry);
    }

    fn state_label(&self) -> Option<&'static str> {
        Some(self.inner.cache_controller().state().as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dicer_rdt::PerAppSample;

    const N: u32 = 20;

    fn sample(hp_ipc: f64, be_bw_total: f64, n_bes: usize) -> PeriodSample {
        let hp = PerAppSample { ipc: hp_ipc, llc_occupancy_bytes: 0, mem_bw_gbps: 5.0, miss_ratio: 0.1 };
        let be = PerAppSample {
            ipc: 0.5,
            llc_occupancy_bytes: 0,
            mem_bw_gbps: be_bw_total / n_bes as f64,
            miss_ratio: 0.4,
        };
        PeriodSample { time_s: 0.0, hp, bes: vec![be; n_bes], total_bw_gbps: 5.0 + be_bw_total }
    }

    /// Drives the controller into the throttled near-saturation hover.
    fn drive_to_hover(d: &mut DicerAdmission) {
        d.initial_plan(N);
        d.on_period(&sample(1.0, 55.0, 9), N); // -> sampling
        for _ in 0..7 {
            d.on_period(&sample(1.0, 20.0, 9), N); // sweep, calm readings
        }
        // Persistent saturation engages the throttle.
        for _ in 0..3 {
            d.on_period(&sample(1.0, 60.0, 9), N);
        }
        assert!(d.mba_level().is_throttled());
    }

    #[test]
    fn starts_with_everything_admitted() {
        let mut d = DicerAdmission::new(DicerConfig::default());
        d.initial_plan(N);
        d.on_period(&sample(1.0, 10.0, 9), N);
        assert_eq!(d.admitted(), Some(9));
    }

    #[test]
    fn evicts_after_sustained_throttled_hover() {
        let mut d = DicerAdmission::new(DicerConfig::default());
        drive_to_hover(&mut d);
        let before = d.admitted().unwrap();
        // Traffic hovers just below the threshold while throttled.
        for _ in 0..EVICT_AFTER {
            d.on_period(&sample(1.0, 47.0, 9), N);
        }
        assert_eq!(d.admitted(), Some(before - 1), "one BE evicted");
        assert!(d.admission_changes >= 1);
    }

    #[test]
    fn never_evicts_below_one_be() {
        let mut d = DicerAdmission::new(DicerConfig::default());
        drive_to_hover(&mut d);
        for _ in 0..20 * EVICT_AFTER {
            d.on_period(&sample(1.0, 60.0, 9), N);
        }
        assert_eq!(d.admitted(), Some(1), "floor is one BE");
    }

    #[test]
    fn readmits_after_sustained_calm() {
        let mut d = DicerAdmission::new(DicerConfig::default());
        drive_to_hover(&mut d);
        for _ in 0..EVICT_AFTER {
            d.on_period(&sample(1.0, 47.0, 9), N);
        }
        let evicted_to = d.admitted().unwrap();
        assert!(evicted_to < 9);
        // Calm traffic (below the re-admission hysteresis) long enough to
        // fully relax MBA and pass the re-admission bar.
        for _ in 0..100 {
            d.on_period(&sample(1.0, 5.0, 9), N);
        }
        assert!(d.admitted().unwrap() > evicted_to, "BE re-admitted after calm");
    }

    #[test]
    fn no_admission_changes_on_quiet_workloads() {
        let mut d = DicerAdmission::new(DicerConfig::default());
        d.initial_plan(N);
        for _ in 0..50 {
            d.on_period(&sample(1.0, 10.0, 9), N);
        }
        assert_eq!(d.admitted(), Some(9));
        assert_eq!(d.admission_changes, 0);
    }
}
