//! The controller framework: one trait, one registry, zero bespoke glue.
//!
//! DICER's Listing 1–3 controllers (cache, bandwidth governor, admission)
//! each drive a finite state machine once per monitoring period. This
//! module gives that shape a name so the Session runtime, telemetry, and
//! dicerd can consume *any* controller generically:
//!
//! * [`Controller`] — the period-driven state machine: an allocation-free
//!   `observe_and_update(&Observation) -> Decision` plus a [`Summary`]
//!   snapshot carrying the stable state label and a 0..=3 [`Severity`]
//!   code.
//! * [`ControllerPolicy`] — the adapter that runs a controller behind the
//!   existing [`Policy`] facade. It stores the last [`Decision`], surfaces
//!   `mba_level`/`admitted_bes` from it, labels the Session's
//!   `policy_step` spans with the controller state, and emits a
//!   [`TelemetryEvent::ControllerStatus`] whenever the (state, severity)
//!   pair changes — the bare controllers never emit it, so the pinned
//!   decision goldens are untouched.
//! * [`ControllerRegistry`] — named constructors. Everything registered
//!   here is driven through the conformance contract in
//!   [`crate::conformance`]; ci fails the build if a registered controller
//!   has no contract entry.
//!
//! Landing a new policy is mechanical: implement [`Controller`], add a
//! [`ControllerSpec`] to [`ControllerRegistry::standard`], add a row to
//! `conformance::CONTRACT_TABLE`, and the suite either passes or names the
//! violated clause (see DESIGN.md §13 for the recipe).

use crate::Policy;
use dicer_rdt::{MbaLevel, PartitionPlan, PeriodSample};
use dicer_telemetry::{ControllerCounters, Telemetry, TelemetryEvent};

/// Everything a controller may look at in one monitoring period.
///
/// `sample` is `None` when the period elapsed but no counters were
/// delivered (a dropped CMT/MBM read under fault injection) — the
/// controller must hold its course without acting on invented data.
#[derive(Debug, Clone, Copy)]
pub struct Observation<'a> {
    /// The period's counters, if they arrived.
    pub sample: Option<&'a PeriodSample>,
    /// Cache geometry (total LLC ways).
    pub n_ways: u32,
}

impl<'a> Observation<'a> {
    /// A delivered-sample observation.
    pub fn delivered(sample: &'a PeriodSample, n_ways: u32) -> Self {
        Observation { sample: Some(sample), n_ways }
    }

    /// A missing-sample observation.
    pub fn missing(n_ways: u32) -> Self {
        Observation { sample: None, n_ways }
    }
}

/// The full actuation a controller wants in force for the next period.
///
/// Plain `Copy` data — building one allocates nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// Cache partition plan.
    pub plan: PartitionPlan,
    /// MBA throttle for the BE class.
    pub mba_level: MbaLevel,
    /// BEs that should stay scheduled (`None` = all).
    pub admitted_bes: Option<u32>,
}

impl Decision {
    /// A cache-only decision: no throttle, everyone admitted.
    pub fn cache_only(plan: PartitionPlan) -> Self {
        Decision { plan, mba_level: MbaLevel::FULL, admitted_bes: None }
    }
}

/// How urgently a controller is intervening, coarsened to four codes so
/// fleets can be scanned at a glance (`dicer_controller_severity` on
/// dicerd's `/metrics`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Steady state: optimising, unthrottled, everyone admitted.
    Nominal = 0,
    /// Actively adjusting (validating a reset, mild throttling).
    Adjusting = 1,
    /// Contention detected and being fought (sampling sweep, floor
    /// throttle).
    Degraded = 2,
    /// Load shedding: at least one BE evicted.
    Critical = 3,
}

impl Severity {
    /// The numeric code, 0 ..= 3.
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Stable lowercase label.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Nominal => "nominal",
            Severity::Adjusting => "adjusting",
            Severity::Degraded => "degraded",
            Severity::Critical => "critical",
        }
    }
}

/// A point-in-time snapshot of a controller — cheap `Copy` data suitable
/// for per-period polling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Controller display name (stable across the run).
    pub name: &'static str,
    /// Stable label of the current state machine position (for the
    /// DICER family: `"sampling"`, `"optimising"`, `"validating_reset"`).
    pub state: &'static str,
    /// Coarse severity code.
    pub severity: Severity,
    /// Periods observed so far, missing ones included.
    pub periods_seen: u64,
    /// HP ways currently enforced (0 before the first period).
    pub hp_ways: u32,
    /// MBA throttle currently in force.
    pub mba_level: MbaLevel,
    /// BEs currently admitted (`None` = all).
    pub admitted_bes: Option<u32>,
    /// Cumulative cache-loop counters.
    pub counters: ControllerCounters,
}

/// A period-driven finite state machine controlling cache ways, memory
/// bandwidth, and/or admission.
///
/// The contract every implementation must honour is encoded executably in
/// [`crate::conformance`]; prose form in DESIGN.md §13. The hot-path
/// methods (`observe_and_update`, `summary`) must not allocate.
pub trait Controller {
    /// Short, stable display name.
    fn name(&self) -> &'static str;
    /// Plan to enforce for the very first period (before any observation).
    fn initial_plan(&self, n_ways: u32) -> PartitionPlan;
    /// Advance the state machine by one period and return the decision to
    /// enforce next period. Allocation-free.
    fn observe_and_update(&mut self, obs: &Observation<'_>) -> Decision;
    /// Snapshot the controller's state, severity, and counters.
    fn summary(&self) -> Summary;
    /// Attach a telemetry handle for transition events.
    fn set_telemetry(&mut self, _telemetry: Telemetry) {}
}

/// Boxed controllers are controllers too, so registry products drive the
/// same generic code paths as concrete ones.
impl Controller for Box<dyn Controller + Send> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn initial_plan(&self, n_ways: u32) -> PartitionPlan {
        (**self).initial_plan(n_ways)
    }
    fn observe_and_update(&mut self, obs: &Observation<'_>) -> Decision {
        (**self).observe_and_update(obs)
    }
    fn summary(&self) -> Summary {
        (**self).summary()
    }
    fn set_telemetry(&mut self, telemetry: Telemetry) {
        (**self).set_telemetry(telemetry);
    }
}

/// Runs a [`Controller`] behind the [`Policy`] facade the Session runtime
/// consumes.
///
/// Beyond plain adaptation it adds the framework services every registered
/// controller gets for free: `ControllerStatus` telemetry on (state,
/// severity) change and a state label for the Session's `policy_step`
/// spans.
#[derive(Debug, Clone)]
pub struct ControllerPolicy<C> {
    controller: C,
    last: Option<Decision>,
    last_status: Option<(&'static str, Severity)>,
    telemetry: Telemetry,
}

impl<C: Controller> ControllerPolicy<C> {
    /// Wraps a controller.
    pub fn new(controller: C) -> Self {
        ControllerPolicy { controller, last: None, last_status: None, telemetry: Telemetry::off() }
    }

    /// The wrapped controller.
    pub fn controller(&self) -> &C {
        &self.controller
    }

    /// The wrapped controller, mutably.
    pub fn controller_mut(&mut self) -> &mut C {
        &mut self.controller
    }

    /// The controller's current snapshot.
    pub fn summary(&self) -> Summary {
        self.controller.summary()
    }

    fn step(&mut self, obs: &Observation<'_>) -> PartitionPlan {
        let decision = self.controller.observe_and_update(obs);
        self.last = Some(decision);
        let s = self.controller.summary();
        let status = (s.state, s.severity);
        if self.last_status != Some(status) {
            self.last_status = Some(status);
            self.telemetry.emit(&TelemetryEvent::ControllerStatus {
                name: s.name,
                period: s.periods_seen,
                state: s.state,
                severity: s.severity.code(),
            });
        }
        decision.plan
    }
}

impl<C: Controller> Policy for ControllerPolicy<C> {
    fn name(&self) -> &'static str {
        self.controller.name()
    }
    fn initial_plan(&self, n_ways: u32) -> PartitionPlan {
        self.controller.initial_plan(n_ways)
    }
    fn on_period(&mut self, sample: &PeriodSample, n_ways: u32) -> PartitionPlan {
        self.step(&Observation::delivered(sample, n_ways))
    }
    fn on_missing_period(&mut self, n_ways: u32) -> PartitionPlan {
        self.step(&Observation::missing(n_ways))
    }
    fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry.clone();
        self.controller.set_telemetry(telemetry);
    }
    fn mba_level(&self) -> MbaLevel {
        self.last.map_or(MbaLevel::FULL, |d| d.mba_level)
    }
    fn admitted_bes(&self) -> Option<u32> {
        self.last.and_then(|d| d.admitted_bes)
    }
    fn state_label(&self) -> Option<&'static str> {
        Some(self.controller.summary().state)
    }
}

/// A named controller constructor — one registry row.
#[derive(Clone, Copy)]
pub struct ControllerSpec {
    /// Stable registry key (lowercase, e.g. `"dicer-mba"`).
    pub name: &'static str,
    /// Display name the built controller reports (e.g. `"DICER+MBA"`).
    pub display: &'static str,
    /// Builds a fresh controller with its default paper configuration.
    pub build: fn() -> Box<dyn Controller + Send>,
}

impl ControllerSpec {
    /// A fresh controller instance.
    pub fn build_controller(&self) -> Box<dyn Controller + Send> {
        (self.build)()
    }

    /// A fresh controller wrapped for the Session runtime.
    pub fn build_policy(&self) -> ControllerPolicy<Box<dyn Controller + Send>> {
        ControllerPolicy::new(self.build_controller())
    }
}

impl std::fmt::Debug for ControllerSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ControllerSpec")
            .field("name", &self.name)
            .field("display", &self.display)
            .finish()
    }
}

/// The set of controllers the generic layers (Session, telemetry, dicerd,
/// the conformance harness) know how to build by name.
#[derive(Debug, Clone, Default)]
pub struct ControllerRegistry {
    specs: Vec<ControllerSpec>,
}

impl ControllerRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ControllerRegistry::default()
    }

    /// The standard registry: the three ported Listing 1–3 controllers.
    pub fn standard() -> Self {
        let mut reg = ControllerRegistry::new();
        reg.register(ControllerSpec {
            name: "dicer",
            display: "DICER",
            build: || Box::new(crate::Dicer::new(crate::DicerConfig::default())),
        });
        reg.register(ControllerSpec {
            name: "dicer-mba",
            display: "DICER+MBA",
            build: || Box::new(crate::DicerMba::new(crate::DicerConfig::default())),
        });
        reg.register(ControllerSpec {
            name: "dicer-adm",
            display: "DICER+ADM",
            build: || Box::new(crate::DicerAdmission::new(crate::DicerConfig::default())),
        });
        reg
    }

    /// Adds a spec. Panics on a duplicate key — duplicates would make the
    /// conformance coverage check ambiguous.
    pub fn register(&mut self, spec: ControllerSpec) {
        assert!(
            self.specs.iter().all(|s| s.name != spec.name),
            "controller {:?} registered twice",
            spec.name
        );
        self.specs.push(spec);
    }

    /// All registered specs, in registration order.
    pub fn specs(&self) -> &[ControllerSpec] {
        &self.specs
    }

    /// Looks a spec up by registry key.
    pub fn get(&self, name: &str) -> Option<&ControllerSpec> {
        self.specs.iter().find(|s| s.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dicer_telemetry::CollectingSink;
    use std::sync::Arc;

    #[test]
    fn severity_codes_and_labels_are_stable() {
        let all = [Severity::Nominal, Severity::Adjusting, Severity::Degraded, Severity::Critical];
        let labels = ["nominal", "adjusting", "degraded", "critical"];
        for (i, (s, l)) in all.iter().zip(labels).enumerate() {
            assert_eq!(s.code() as usize, i);
            assert_eq!(s.as_str(), l);
        }
        assert!(Severity::Nominal < Severity::Critical);
        assert_eq!(Severity::Adjusting.max(Severity::Degraded), Severity::Degraded);
    }

    #[test]
    fn standard_registry_has_the_three_ported_controllers() {
        let reg = ControllerRegistry::standard();
        let names: Vec<&str> = reg.specs().iter().map(|s| s.name).collect();
        assert_eq!(names, ["dicer", "dicer-mba", "dicer-adm"]);
        for spec in reg.specs() {
            let c = spec.build_controller();
            assert_eq!(Controller::name(&c), spec.display);
            let s = c.summary();
            assert_eq!(s.periods_seen, 0, "{}: fresh controllers have seen nothing", spec.name);
            assert_eq!(s.severity, Severity::Nominal);
        }
        assert!(reg.get("dicer-mba").is_some());
        assert!(reg.get("nope").is_none());
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_panics() {
        let mut reg = ControllerRegistry::standard();
        reg.register(ControllerSpec {
            name: "dicer",
            display: "DICER",
            build: || Box::new(crate::Dicer::new(crate::DicerConfig::default())),
        });
    }

    #[test]
    fn controller_policy_emits_status_on_change_only() {
        let sink = Arc::new(CollectingSink::new());
        let telemetry = Telemetry::new(sink.clone());
        let mut p = ControllerRegistry::standard().get("dicer").unwrap().build_policy();
        Policy::set_telemetry(&mut p, telemetry);
        let calm = crate::conformance::synthetic_sample(1.0, 5.0, 20.0);
        let hot = crate::conformance::synthetic_sample(1.0, 5.0, 60.0);
        p.on_period(&calm, 20);
        p.on_period(&calm, 20); // same (state, severity): no second status
        p.on_period(&hot, 20); // optimising -> sampling
        let statuses: Vec<String> = sink
            .take()
            .iter()
            .filter(|e| e.kind() == "controller_status")
            .map(|e| e.to_json())
            .collect();
        assert_eq!(
            statuses,
            [
                "{\"event\":\"controller_status\",\"name\":\"DICER\",\"period\":1,\
                 \"state\":\"optimising\",\"severity\":0}",
                "{\"event\":\"controller_status\",\"name\":\"DICER\",\"period\":3,\
                 \"state\":\"sampling\",\"severity\":2}",
            ]
        );
        assert_eq!(Policy::state_label(&p), Some("sampling"));
    }
}
