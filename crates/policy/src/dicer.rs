//! The DICER controller (paper §3, Listings 1–3).
//!
//! DICER starts like CT (HP owns all ways but one) and then, at every
//! monitoring-period boundary:
//!
//! 1. **Saturation** — if total link traffic exceeded `MemBW_threshold`, the
//!    workload is (re)classified CT-Thwarted and DICER *samples* decreasing
//!    HP allocations, one per period, keeping the one with the best HP IPC
//!    (`optimal_allocation`, `IPC_opt`).
//! 2. **Phase change** (Eq. 2) — if HP's bandwidth jumped more than
//!    `phase_threshold` above the geometric mean of its previous three
//!    periods, the optimisation is *reset*.
//! 3. **Optimisation** (Listing 2) — with stable HP IPC (Eq. 3) DICER takes
//!    one way from HP and gives it to the BEs; with improved IPC it holds;
//!    with degraded IPC it *resets*.
//! 4. **Reset** (Listing 3) — return to the best-known allocation (CT for
//!    CT-Favoured workloads, `optimal_allocation` for CT-Thwarted ones) and
//!    validate the outcome over the following period, falling back to
//!    rollback or to fresh sampling as the listing prescribes.

use crate::Policy;
use dicer_rdt::{PartitionPlan, PeriodSample};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// How the sampler chooses candidate HP allocations (the paper only says
/// "decreasing LLC partition sizes"; the default geometric ladder is the
/// variant evaluated in EXPERIMENTS.md, the others feed the ablation bench).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SamplingStrategy {
    /// Decreasing from `n_ways − 1` in fixed steps.
    Linear {
        /// Step size in ways (≥ 1).
        step: u32,
    },
    /// A geometric ladder: 19, 14, 10, 7, 5, 3, 2, 1 on a 20-way cache.
    Geometric,
    /// An explicit candidate list (strictly decreasing HP ways).
    Custom(Vec<u32>),
}

impl SamplingStrategy {
    /// Candidate HP allocations, in the order they will be applied.
    pub fn candidates(&self, n_ways: u32) -> Vec<u32> {
        match self {
            SamplingStrategy::Linear { step } => {
                assert!(*step >= 1);
                let mut v: Vec<u32> = (1..n_ways).rev().step_by(*step as usize).collect();
                if v.last() != Some(&1) {
                    v.push(1);
                }
                v
            }
            SamplingStrategy::Geometric => {
                let mut v = Vec::new();
                let mut w = n_ways - 1;
                while w > 1 {
                    v.push(w);
                    // ~30% shrink per sample, always at least one way.
                    w = (w as f64 * 0.7).floor().max(1.0) as u32;
                }
                v.push(1);
                v
            }
            SamplingStrategy::Custom(v) => {
                assert!(!v.is_empty(), "custom sampling needs candidates");
                assert!(
                    v.windows(2).all(|w| w[1] < w[0]),
                    "custom candidates must be strictly decreasing"
                );
                assert!(v.iter().all(|w| *w >= 1 && *w < n_ways));
                v.clone()
            }
        }
    }
}

/// DICER configuration (defaults from Table 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DicerConfig {
    /// `MemBW_threshold`: total-traffic saturation threshold in Gbps.
    pub mem_bw_threshold_gbps: f64,
    /// `phase_threshold` of Eq. 2 (0.30 = 30 %).
    pub phase_threshold: f64,
    /// `a` of Eq. 3: the IPC stability band (0.05 = ±5 %).
    pub stability_alpha: f64,
    /// Candidate ladder used during allocation sampling.
    pub sampling: SamplingStrategy,
    /// Periods after a completed sampling pass during which saturation does
    /// not re-trigger sampling. Listing 1 as written resamples on *every*
    /// saturated period; when the BEs saturate the link at any partition
    /// (e.g. nine streaming apps), that loops forever and the HP spends
    /// almost all its time at probe allocations. A cool-down bounds the
    /// probing duty cycle without changing any other decision.
    pub sampling_cooldown_periods: u32,
    /// Cap for the exponential cool-down backoff used when sampling keeps
    /// concluding that partitioning cannot fix the saturation (the optimum
    /// is the largest candidate).
    pub max_cooldown_periods: u32,
}

impl Default for DicerConfig {
    fn default() -> Self {
        Self {
            mem_bw_threshold_gbps: 50.0,
            phase_threshold: 0.30,
            stability_alpha: 0.05,
            sampling: SamplingStrategy::Geometric,
            sampling_cooldown_periods: 10,
            max_cooldown_periods: 80,
        }
    }
}

impl DicerConfig {
    /// A configuration approximating **DCP-QoS** (Papadakis et al., the
    /// paper's closest related work, §5): the same black-box dynamic cache
    /// partitioning loop but *without* bandwidth-saturation detection — the
    /// threshold is pushed beyond any achievable link traffic, so sampling
    /// never triggers and CT-Thwarted workloads are never recognised.
    pub fn dcp_qos() -> Self {
        Self { mem_bw_threshold_gbps: 1e9, ..Default::default() }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if !self.mem_bw_threshold_gbps.is_finite() || self.mem_bw_threshold_gbps <= 0.0 {
            return Err("saturation threshold must be positive".into());
        }
        if !self.phase_threshold.is_finite() || self.phase_threshold <= 0.0 {
            return Err("phase threshold must be positive".into());
        }
        if !(0.0 < self.stability_alpha && self.stability_alpha < 1.0) {
            return Err("stability alpha must be in (0,1)".into());
        }
        if self.max_cooldown_periods < self.sampling_cooldown_periods {
            return Err("max cooldown must be >= base cooldown".into());
        }
        Ok(())
    }
}

/// Which controller activity is in progress (exposed for tests, tracing and
/// the ablation benches).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DicerState {
    /// Sweeping candidate allocations, one per period.
    Sampling,
    /// Normal steady-state optimisation (Listing 2).
    Optimising,
    /// A reset was applied last period and is being validated (Listing 3).
    ValidatingReset,
}

#[derive(Debug, Clone)]
enum State {
    Sampling {
        /// Candidates not yet applied.
        queue: VecDeque<u32>,
        /// Allocation applied during the period being measured next.
        current: u32,
        /// Best (ways, ipc) observed so far.
        best: Option<(u32, f64)>,
    },
    Optimising,
    ValidatingReset {
        ct_favoured: bool,
        /// Allocation to fall back to if the reset did not help (CT-F path).
        rollback: u32,
        /// HP IPC of the period that triggered the reset.
        trigger_ipc: f64,
    },
}

/// The DICER dynamic cache-partitioning controller.
#[derive(Debug, Clone)]
pub struct Dicer {
    cfg: DicerConfig,
    name: &'static str,
    state: State,
    /// Current HP allocation in ways (the plan in force).
    hp_ways: u32,
    /// HP bandwidth of up to the last three periods (Eq. 2 window).
    bw_history: VecDeque<f64>,
    /// HP IPC of the previous period (Eq. 3 reference).
    prev_ipc: Option<f64>,
    /// Best-known allocation for CT-T workloads.
    optimal_allocation: u32,
    /// HP IPC measured at `optimal_allocation` during the last sampling.
    ipc_opt: Option<f64>,
    /// Whether the workload is still presumed CT-Favoured.
    ct_favoured: bool,
    /// Periods remaining before saturation may re-trigger sampling.
    sampling_cooldown: u32,
    /// Cool-down to impose after the next sampling pass (backs off
    /// exponentially while sampling keeps blaming unfixable saturation).
    next_cooldown: u32,
    /// Decision counters for introspection/ablation.
    pub stats: DicerStats,
}

/// Decision counters for introspection and the ablation benches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DicerStats {
    /// Periods spent sampling.
    pub sampling_periods: u64,
    /// One-way shrink steps taken.
    pub shrinks: u64,
    /// Resets triggered (either path).
    pub resets: u64,
    /// Phase changes detected (Eq. 2).
    pub phase_changes: u64,
    /// Periods in which saturation was observed.
    pub saturated_periods: u64,
}

impl Dicer {
    /// Builds the controller; panics on invalid configuration.
    pub fn new(cfg: DicerConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid DicerConfig: {e}");
        }
        Self::with_name(cfg, "DICER")
    }

    /// Builds the controller with an alternate display name (used for the
    /// DCP-QoS related-work variant, which shares the state machine).
    pub fn with_name(cfg: DicerConfig, name: &'static str) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid DicerConfig: {e}");
        }
        let next_cooldown = cfg.sampling_cooldown_periods;
        Self {
            cfg,
            name,
            state: State::Optimising,
            hp_ways: 0, // set by initial_plan
            bw_history: VecDeque::with_capacity(3),
            prev_ipc: None,
            optimal_allocation: 0,
            ipc_opt: None,
            ct_favoured: true,
            sampling_cooldown: 0,
            next_cooldown,
            stats: DicerStats::default(),
        }
    }

    /// Current coarse state (for tests and tracing).
    pub fn state(&self) -> DicerState {
        match self.state {
            State::Sampling { .. } => DicerState::Sampling,
            State::Optimising => DicerState::Optimising,
            State::ValidatingReset { .. } => DicerState::ValidatingReset,
        }
    }

    /// Whether the workload is currently classified CT-Favoured.
    pub fn ct_favoured(&self) -> bool {
        self.ct_favoured
    }

    /// Current HP allocation in ways.
    pub fn hp_ways(&self) -> u32 {
        self.hp_ways
    }

    fn saturated(&self, sample: &PeriodSample) -> bool {
        sample.total_bw_gbps > self.cfg.mem_bw_threshold_gbps
    }

    /// Eq. 2: HP bandwidth exceeds `(1 + phase_threshold) ×` the geometric
    /// mean of the previous three periods. Requires a full window.
    fn phase_change(&self, hp_bw: f64) -> bool {
        if self.bw_history.len() < 3 {
            return false;
        }
        let gm = self.bw_history.iter().map(|b| b.max(1e-9).ln()).sum::<f64>() / 3.0;
        hp_bw > (1.0 + self.cfg.phase_threshold) * gm.exp()
    }

    fn push_bw(&mut self, hp_bw: f64) {
        if self.bw_history.len() == 3 {
            self.bw_history.pop_front();
        }
        self.bw_history.push_back(hp_bw);
    }

    fn begin_sampling(&mut self, n_ways: u32) -> PartitionPlan {
        self.ct_favoured = false;
        let mut queue: VecDeque<u32> = self.cfg.sampling.candidates(n_ways).into();
        let first = queue.pop_front().expect("sampling ladder is never empty");
        self.state = State::Sampling { queue, current: first, best: None };
        self.bw_history.clear();
        self.enforce(first)
    }

    /// Listing 3 entry point: apply the reset allocation and move to the
    /// validation state.
    fn reset(&mut self, n_ways: u32, trigger_ipc: f64) -> PartitionPlan {
        self.stats.resets += 1;
        let rollback = self.hp_ways;
        let target = if self.ct_favoured { n_ways - 1 } else { self.optimal_allocation.max(1) };
        self.state =
            State::ValidatingReset { ct_favoured: self.ct_favoured, rollback, trigger_ipc };
        self.bw_history.clear();
        self.enforce(target)
    }

    fn enforce(&mut self, hp_ways: u32) -> PartitionPlan {
        self.hp_ways = hp_ways;
        PartitionPlan::Split { hp_ways }
    }
}

impl Policy for Dicer {
    fn name(&self) -> &'static str {
        self.name
    }

    /// DICER begins exactly like CT (Listing 1 preamble): HP gets `N − 1`
    /// ways, all BEs share one, and the workload is presumed CT-Favoured.
    fn initial_plan(&self, n_ways: u32) -> PartitionPlan {
        PartitionPlan::cache_takeover(n_ways)
    }

    fn on_period(&mut self, sample: &PeriodSample, n_ways: u32) -> PartitionPlan {
        if self.hp_ways == 0 {
            self.hp_ways = n_ways - 1; // first period ran under initial_plan
            self.optimal_allocation = n_ways - 1;
        }
        let ipc = sample.hp.ipc;
        let hp_bw = sample.hp.mem_bw_gbps;
        let saturated_now = self.saturated(sample);
        if saturated_now {
            self.stats.saturated_periods += 1;
        }
        // A cool-down after each completed sampling pass keeps persistent
        // (partitioning-proof) saturation from re-triggering the sweep every
        // single period; see `DicerConfig::sampling_cooldown_periods`.
        let saturated = saturated_now && self.sampling_cooldown == 0;
        self.sampling_cooldown = self.sampling_cooldown.saturating_sub(1);

        let plan = match std::mem::replace(&mut self.state, State::Optimising) {
            State::Sampling { mut queue, current, best } => {
                self.stats.sampling_periods += 1;
                // Associate the measured IPC with the allocation in force.
                let best = match best {
                    Some((bw_ways, bi)) if bi >= ipc => Some((bw_ways, bi)),
                    _ => Some((current, ipc)),
                };
                match queue.pop_front() {
                    Some(next) => {
                        self.state = State::Sampling { queue, current: next, best };
                        self.enforce(next)
                    }
                    None => {
                        let (opt, ipc_opt) = best.expect("at least one sample measured");
                        self.optimal_allocation = opt;
                        self.ipc_opt = Some(ipc_opt);
                        self.prev_ipc = Some(ipc_opt);
                        self.state = State::Optimising;
                        // Arm the post-sampling cool-down. If the sweep
                        // concluded that the largest allocation is best, the
                        // saturation is not fixable by partitioning — back
                        // off exponentially before probing again.
                        self.sampling_cooldown = self.next_cooldown;
                        let largest = self.cfg.sampling.candidates(n_ways)[0];
                        self.next_cooldown = if opt == largest {
                            (self.next_cooldown * 2).min(self.cfg.max_cooldown_periods)
                        } else {
                            self.cfg.sampling_cooldown_periods
                        };
                        self.enforce(opt)
                    }
                }
            }

            State::ValidatingReset { ct_favoured, rollback, trigger_ipc } => {
                if saturated {
                    self.begin_sampling(n_ways)
                } else if ct_favoured {
                    let a = self.cfg.stability_alpha;
                    if ipc > (1.0 + a) * trigger_ipc {
                        // Reset was right: continue optimising from CT.
                        self.state = State::Optimising;
                        PartitionPlan::Split { hp_ways: self.hp_ways }
                    } else {
                        // The dip was a phase with lower IPC, not our doing:
                        // revert to the allocation that triggered the reset.
                        self.state = State::Optimising;
                        self.enforce(rollback)
                    }
                } else {
                    let a = self.cfg.stability_alpha;
                    let near_opt = self
                        .ipc_opt
                        .map(|opt| ipc >= (1.0 - a) * opt)
                        .unwrap_or(false);
                    if near_opt {
                        self.state = State::Optimising;
                        PartitionPlan::Split { hp_ways: self.hp_ways }
                    } else {
                        // The optimum moved: sample afresh.
                        self.begin_sampling(n_ways)
                    }
                }
            }

            State::Optimising => {
                if saturated {
                    self.begin_sampling(n_ways)
                } else if saturated_now {
                    // Saturated but inside the sampling cool-down: Listing 2's
                    // optimisation assumes an unsaturated link, so hold the
                    // allocation rather than misreading bandwidth noise as
                    // cache headroom.
                    self.state = State::Optimising;
                    PartitionPlan::Split { hp_ways: self.hp_ways }
                } else if self.phase_change(hp_bw) {
                    self.stats.phase_changes += 1;
                    self.reset(n_ways, ipc)
                } else {
                    match self.prev_ipc {
                        None => {
                            // First observation: just hold.
                            self.state = State::Optimising;
                            PartitionPlan::Split { hp_ways: self.hp_ways }
                        }
                        Some(prev) => {
                            let a = self.cfg.stability_alpha;
                            if ipc >= (1.0 - a) * prev && ipc <= (1.0 + a) * prev {
                                // Stable: give one way to the BEs.
                                self.state = State::Optimising;
                                if self.hp_ways > 1 {
                                    self.stats.shrinks += 1;
                                    let w = self.hp_ways - 1;
                                    self.enforce(w)
                                } else {
                                    PartitionPlan::Split { hp_ways: 1 }
                                }
                            } else if ipc > (1.0 + a) * prev {
                                // Better: same cache needs, higher-IPC phase.
                                self.state = State::Optimising;
                                PartitionPlan::Split { hp_ways: self.hp_ways }
                            } else {
                                // Worse: our shrink (or a slow phase) hurt.
                                self.reset(n_ways, ipc)
                            }
                        }
                    }
                }
            }
        };

        self.push_bw(hp_bw);
        self.prev_ipc = Some(ipc);
        debug_assert!(plan.validate(n_ways).is_ok());
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dicer_rdt::PerAppSample;

    const N: u32 = 20;

    fn sample(hp_ipc: f64, hp_bw: f64, total_bw: f64) -> PeriodSample {
        let hp = PerAppSample { ipc: hp_ipc, llc_occupancy_bytes: 0, mem_bw_gbps: hp_bw, miss_ratio: 0.1 };
        let be = PerAppSample { ipc: 0.5, llc_occupancy_bytes: 0, mem_bw_gbps: (total_bw - hp_bw) / 9.0, miss_ratio: 0.3 };
        PeriodSample { time_s: 0.0, hp, bes: vec![be; 9], total_bw_gbps: total_bw }
    }

    fn dicer() -> Dicer {
        Dicer::new(DicerConfig::default())
    }

    #[test]
    fn starts_like_ct() {
        let d = dicer();
        assert_eq!(d.initial_plan(N), PartitionPlan::Split { hp_ways: 19 });
        assert!(d.ct_favoured());
    }

    #[test]
    fn stable_ipc_shrinks_hp_one_way_per_period() {
        let mut d = dicer();
        let mut plan = d.initial_plan(N);
        // The first observed period only primes prev_ipc (hold at 19).
        for expected in [19, 19, 18, 17] {
            assert_eq!(plan, PartitionPlan::Split { hp_ways: expected });
            plan = d.on_period(&sample(1.0, 5.0, 20.0), N);
        }
        assert_eq!(d.stats.shrinks, 3, "first period only primes prev_ipc");
    }

    #[test]
    fn shrink_floors_at_one_way() {
        let mut d = dicer();
        d.initial_plan(N);
        for _ in 0..40 {
            d.on_period(&sample(1.0, 5.0, 20.0), N);
        }
        assert_eq!(d.hp_ways(), 1);
    }

    #[test]
    fn improvement_holds_allocation() {
        let mut d = dicer();
        d.initial_plan(N);
        d.on_period(&sample(1.0, 5.0, 20.0), N); // prime
        d.on_period(&sample(1.0, 5.0, 20.0), N); // stable -> 18
        let w = d.hp_ways();
        let plan = d.on_period(&sample(1.3, 5.0, 20.0), N); // +30% better
        assert_eq!(plan, PartitionPlan::Split { hp_ways: w }, "hold on improvement");
    }

    #[test]
    fn degradation_resets_to_ct_when_ct_favoured() {
        let mut d = dicer();
        d.initial_plan(N);
        d.on_period(&sample(1.0, 5.0, 20.0), N);
        d.on_period(&sample(1.0, 5.0, 20.0), N); // 18
        d.on_period(&sample(1.0, 5.0, 20.0), N); // 17
        let plan = d.on_period(&sample(0.8, 5.0, 20.0), N); // -20%: worse
        assert_eq!(plan, PartitionPlan::Split { hp_ways: 19 }, "reset to CT");
        assert_eq!(d.state(), DicerState::ValidatingReset);
        assert_eq!(d.stats.resets, 1);
    }

    #[test]
    fn ct_favoured_reset_validation_keeps_ct_on_recovery() {
        let mut d = dicer();
        d.initial_plan(N);
        d.on_period(&sample(1.0, 5.0, 20.0), N);
        d.on_period(&sample(1.0, 5.0, 20.0), N);
        d.on_period(&sample(0.8, 5.0, 20.0), N); // reset to 19
        let plan = d.on_period(&sample(1.0, 5.0, 20.0), N); // recovered > (1+a)*0.8
        assert_eq!(plan, PartitionPlan::Split { hp_ways: 19 });
        assert_eq!(d.state(), DicerState::Optimising);
    }

    #[test]
    fn ct_favoured_reset_rolls_back_when_no_recovery() {
        let mut d = dicer();
        d.initial_plan(N);
        d.on_period(&sample(1.0, 5.0, 20.0), N);
        d.on_period(&sample(1.0, 5.0, 20.0), N); // 18
        d.on_period(&sample(0.8, 5.0, 20.0), N); // reset: rollback = 18
        let plan = d.on_period(&sample(0.8, 5.0, 20.0), N); // no recovery
        assert_eq!(plan, PartitionPlan::Split { hp_ways: 18 }, "roll back");
    }

    #[test]
    fn saturation_triggers_sampling_and_clears_ct_favoured() {
        let mut d = dicer();
        d.initial_plan(N);
        let plan = d.on_period(&sample(1.0, 5.0, 60.0), N);
        assert_eq!(d.state(), DicerState::Sampling);
        assert!(!d.ct_favoured());
        // First candidate of the geometric ladder is 19.
        assert_eq!(plan, PartitionPlan::Split { hp_ways: 19 });
    }

    #[test]
    fn sampling_sweeps_ladder_then_picks_argmax() {
        let mut d = dicer();
        d.initial_plan(N);
        d.on_period(&sample(1.0, 5.0, 60.0), N); // -> sampling, applying 19
        let ladder = SamplingStrategy::Geometric.candidates(N);
        assert_eq!(ladder, vec![19, 13, 9, 6, 4, 2, 1]);
        // Feed IPCs that peak at candidate "6".
        let ipc_for = |w: u32| match w {
            6 => 1.5,
            4 => 1.2,
            _ => 0.9,
        };
        let mut plan = PartitionPlan::Split { hp_ways: 19 };
        for &w in &ladder {
            // Period running at `w` just ended; report its IPC (unsaturated).
            plan = d.on_period(&sample(ipc_for(w), 5.0, 20.0), N);
        }
        assert_eq!(plan, PartitionPlan::Split { hp_ways: 6 }, "argmax enforced");
        assert_eq!(d.state(), DicerState::Optimising);
        assert_eq!(d.hp_ways(), 6);
    }

    #[test]
    fn phase_change_detected_by_bandwidth_jump() {
        let mut d = dicer();
        d.initial_plan(N);
        // Three stable periods to fill the Eq. 2 window. Keep IPC identical
        // so only a bandwidth jump can trigger the reset.
        d.on_period(&sample(1.0, 5.0, 20.0), N);
        d.on_period(&sample(1.0, 5.0, 20.0), N);
        d.on_period(&sample(1.0, 5.0, 20.0), N);
        assert_eq!(d.stats.phase_changes, 0);
        // 40% bandwidth jump with stable IPC -> phase change -> reset to CT.
        let plan = d.on_period(&sample(1.0, 7.0, 22.0), N);
        assert_eq!(d.stats.phase_changes, 1);
        assert_eq!(plan, PartitionPlan::Split { hp_ways: 19 });
    }

    #[test]
    fn small_bandwidth_noise_is_not_a_phase_change() {
        let mut d = dicer();
        d.initial_plan(N);
        d.on_period(&sample(1.0, 5.0, 20.0), N);
        d.on_period(&sample(1.0, 5.1, 20.0), N);
        d.on_period(&sample(1.0, 4.9, 20.0), N);
        d.on_period(&sample(1.0, 5.5, 20.0), N); // +10%: below 30% threshold
        assert_eq!(d.stats.phase_changes, 0);
    }

    #[test]
    fn ct_thwarted_reset_returns_to_sampled_optimum() {
        let mut d = dicer();
        d.initial_plan(N);
        d.on_period(&sample(1.0, 5.0, 60.0), N); // begin sampling
        let ladder = SamplingStrategy::Geometric.candidates(N);
        for &w in &ladder {
            d.on_period(&sample(if w == 4 { 1.4 } else { 1.0 }, 5.0, 20.0), N);
        }
        assert_eq!(d.hp_ways(), 4);
        // Stable periods shrink below the optimum…
        d.on_period(&sample(1.4, 5.0, 20.0), N); // prime/stable -> 3
        // …then a degradation resets to optimal_allocation (4), not CT.
        let plan = d.on_period(&sample(0.9, 5.0, 20.0), N);
        assert_eq!(plan, PartitionPlan::Split { hp_ways: 4 });
        assert_eq!(d.state(), DicerState::ValidatingReset);
        // Validation: IPC near IPC_opt (1.4) -> proceed optimising.
        let plan = d.on_period(&sample(1.38, 5.0, 20.0), N);
        assert_eq!(plan, PartitionPlan::Split { hp_ways: 4 });
        assert_eq!(d.state(), DicerState::Optimising);
    }

    #[test]
    fn ct_thwarted_validation_failure_resamples() {
        let mut d = dicer();
        d.initial_plan(N);
        d.on_period(&sample(1.0, 5.0, 60.0), N);
        let ladder = SamplingStrategy::Geometric.candidates(N);
        for &w in &ladder {
            d.on_period(&sample(if w == 4 { 1.4 } else { 1.0 }, 5.0, 20.0), N);
        }
        d.on_period(&sample(1.4, 5.0, 20.0), N);
        d.on_period(&sample(0.9, 5.0, 20.0), N); // reset -> validating
        // Far from IPC_opt: the optimum moved; sampling restarts.
        d.on_period(&sample(0.9, 5.0, 20.0), N);
        assert_eq!(d.state(), DicerState::Sampling);
    }

    #[test]
    fn saturation_during_validation_resamples() {
        let mut d = dicer();
        d.initial_plan(N);
        d.on_period(&sample(1.0, 5.0, 20.0), N);
        d.on_period(&sample(1.0, 5.0, 20.0), N);
        d.on_period(&sample(0.8, 5.0, 20.0), N); // reset (CT-F path)
        d.on_period(&sample(0.8, 5.0, 60.0), N); // saturated during validation
        assert_eq!(d.state(), DicerState::Sampling);
        assert!(!d.ct_favoured());
    }

    #[test]
    fn persistent_saturation_is_rate_limited_by_cooldown() {
        let mut d = dicer();
        d.initial_plan(N);
        // Saturated forever; IPC is best at the largest allocation.
        d.on_period(&sample(1.0, 5.0, 60.0), N); // enter sampling
        let ladder = SamplingStrategy::Geometric.candidates(N);
        for &w in &ladder {
            d.on_period(&sample(w as f64, 5.0, 60.0), N); // ipc grows with ways
        }
        assert_eq!(d.hp_ways(), 19, "argmax is the largest candidate");
        let sampled_before = d.stats.sampling_periods;
        // For the next `sampling_cooldown_periods` periods saturation must
        // NOT re-trigger sampling.
        for _ in 0..DicerConfig::default().sampling_cooldown_periods {
            d.on_period(&sample(19.0, 5.0, 60.0), N);
            assert_eq!(d.stats.sampling_periods, sampled_before, "resampled inside cooldown");
        }
        // After the cooldown it may sample again...
        d.on_period(&sample(19.0, 5.0, 60.0), N);
        assert_eq!(d.state(), DicerState::Sampling);
        // ...and because the last sweep blamed unfixable saturation, the
        // *next* cooldown is twice as long (exponential backoff).
        for &w in &ladder {
            d.on_period(&sample(w as f64, 5.0, 60.0), N);
        }
        let sampled_mid = d.stats.sampling_periods;
        for _ in 0..2 * DicerConfig::default().sampling_cooldown_periods {
            d.on_period(&sample(19.0, 5.0, 60.0), N);
        }
        assert_eq!(d.stats.sampling_periods, sampled_mid, "backoff not applied");
    }

    #[test]
    fn linear_ladder_structure() {
        let v = SamplingStrategy::Linear { step: 3 }.candidates(20);
        assert_eq!(v.first(), Some(&19));
        assert_eq!(v.last(), Some(&1));
        assert!(v.windows(2).all(|w| w[1] < w[0]));
    }

    #[test]
    #[should_panic]
    fn custom_ladder_must_decrease() {
        SamplingStrategy::Custom(vec![5, 7]).candidates(20);
    }

    #[test]
    #[should_panic]
    fn invalid_config_rejected() {
        Dicer::new(DicerConfig { stability_alpha: 0.0, ..Default::default() });
    }
}
