//! The DICER controller (paper §3, Listings 1–3).
//!
//! DICER starts like CT (HP owns all ways but one) and then, at every
//! monitoring-period boundary:
//!
//! 1. **Saturation** — if total link traffic exceeded `MemBW_threshold`, the
//!    workload is (re)classified CT-Thwarted and DICER *samples* decreasing
//!    HP allocations, one per period, keeping the one with the best HP IPC
//!    (`optimal_allocation`, `IPC_opt`).
//! 2. **Phase change** (Eq. 2) — if HP's bandwidth jumped more than
//!    `phase_threshold` above the geometric mean of its previous three
//!    periods, the optimisation is *reset*.
//! 3. **Optimisation** (Listing 2) — with stable HP IPC (Eq. 3) DICER takes
//!    one way from HP and gives it to the BEs; with improved IPC it holds;
//!    with degraded IPC it *resets*.
//! 4. **Reset** (Listing 3) — return to the best-known allocation (CT for
//!    CT-Favoured workloads, `optimal_allocation` for CT-Thwarted ones) and
//!    validate the outcome over the following period, falling back to
//!    rollback or to fresh sampling as the listing prescribes.

use crate::controller::{Controller, Decision, Observation, Severity, Summary};
use crate::Policy;
use dicer_rdt::{MbaLevel, PartitionPlan, PeriodSample};
use dicer_telemetry::{
    ControllerCounters, ControllerEvent, HoldReason, ResetCause, Telemetry, TelemetryEvent,
};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// How the sampler chooses candidate HP allocations (the paper only says
/// "decreasing LLC partition sizes"; the default geometric ladder is the
/// variant evaluated in EXPERIMENTS.md, the others feed the ablation bench).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SamplingStrategy {
    /// Decreasing from `n_ways − 1` in fixed steps.
    Linear {
        /// Step size in ways (≥ 1).
        step: u32,
    },
    /// A geometric ladder: 19, 14, 10, 7, 5, 3, 2, 1 on a 20-way cache.
    Geometric,
    /// An explicit candidate list (strictly decreasing HP ways).
    Custom(Vec<u32>),
}

impl SamplingStrategy {
    /// Structural validation, independent of the cache geometry. Rejects
    /// empty, non-decreasing or zero-way custom ladders and zero linear
    /// steps — at configuration time, not mid-run.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            SamplingStrategy::Linear { step } => {
                if *step < 1 {
                    return Err("linear sampling step must be >= 1".into());
                }
            }
            SamplingStrategy::Geometric => {}
            SamplingStrategy::Custom(v) => {
                if v.is_empty() {
                    return Err("custom sampling needs at least one candidate".into());
                }
                if !v.windows(2).all(|w| w[1] < w[0]) {
                    return Err("custom candidates must be strictly decreasing".into());
                }
                if v.iter().any(|w| *w < 1) {
                    return Err("custom candidates must grant HP at least one way".into());
                }
            }
        }
        Ok(())
    }

    /// Geometry-aware validation: on top of [`SamplingStrategy::validate`],
    /// every custom candidate must fit `1..n_ways` on the target cache.
    pub fn validate_for(&self, n_ways: u32) -> Result<(), String> {
        self.validate()?;
        if n_ways < 2 {
            return Err(format!("partitioning needs a cache of >= 2 ways, got {n_ways}"));
        }
        if let SamplingStrategy::Custom(v) = self {
            if let Some(w) = v.iter().find(|w| **w >= n_ways) {
                return Err(format!(
                    "custom candidate {w} out of range 1..{n_ways} for this cache"
                ));
            }
        }
        Ok(())
    }

    /// Candidate HP allocations, in the order they will be applied.
    ///
    /// Total for every structurally valid strategy: out-of-range custom
    /// entries are dropped (and a fully out-of-range ladder degenerates to
    /// `[1]`), oversized linear steps jump straight from `n_ways − 1` to 1,
    /// and a 2-way cache yields the single candidate `[1]` under every
    /// strategy — the sweep never panics mid-run.
    pub fn candidates(&self, n_ways: u32) -> Vec<u32> {
        debug_assert!(n_ways >= 2, "partitioning needs at least two ways");
        match self {
            SamplingStrategy::Linear { step } => {
                let step = (*step).max(1) as usize;
                let mut v: Vec<u32> = (1..n_ways).rev().step_by(step).collect();
                if v.last() != Some(&1) {
                    v.push(1);
                }
                v
            }
            SamplingStrategy::Geometric => {
                let mut v = Vec::new();
                let mut w = n_ways - 1;
                while w > 1 {
                    v.push(w);
                    // ~30% shrink per sample, always at least one way.
                    w = (w as f64 * 0.7).floor().max(1.0) as u32;
                }
                v.push(1);
                v
            }
            SamplingStrategy::Custom(v) => {
                let mut out: Vec<u32> =
                    v.iter().copied().filter(|w| (1..n_ways).contains(w)).collect();
                if out.is_empty() {
                    out.push(1);
                }
                out
            }
        }
    }
}

/// DICER configuration (defaults from Table 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DicerConfig {
    /// `MemBW_threshold`: total-traffic saturation threshold in Gbps.
    pub mem_bw_threshold_gbps: f64,
    /// `phase_threshold` of Eq. 2 (0.30 = 30 %).
    pub phase_threshold: f64,
    /// `a` of Eq. 3: the IPC stability band (0.05 = ±5 %).
    pub stability_alpha: f64,
    /// Candidate ladder used during allocation sampling.
    pub sampling: SamplingStrategy,
    /// Periods after a completed sampling pass during which saturation does
    /// not re-trigger sampling. Listing 1 as written resamples on *every*
    /// saturated period; when the BEs saturate the link at any partition
    /// (e.g. nine streaming apps), that loops forever and the HP spends
    /// almost all its time at probe allocations. A cool-down bounds the
    /// probing duty cycle without changing any other decision.
    pub sampling_cooldown_periods: u32,
    /// Cap for the exponential cool-down backoff used when sampling keeps
    /// concluding that partitioning cannot fix the saturation (the optimum
    /// is the largest candidate).
    pub max_cooldown_periods: u32,
}

impl Default for DicerConfig {
    fn default() -> Self {
        Self {
            mem_bw_threshold_gbps: 50.0,
            phase_threshold: 0.30,
            stability_alpha: 0.05,
            sampling: SamplingStrategy::Geometric,
            sampling_cooldown_periods: 10,
            max_cooldown_periods: 80,
        }
    }
}

impl DicerConfig {
    /// A configuration approximating **DCP-QoS** (Papadakis et al., the
    /// paper's closest related work, §5): the same black-box dynamic cache
    /// partitioning loop but *without* bandwidth-saturation detection — the
    /// threshold is pushed beyond any achievable link traffic, so sampling
    /// never triggers and CT-Thwarted workloads are never recognised.
    pub fn dcp_qos() -> Self {
        Self { mem_bw_threshold_gbps: 1e9, ..Default::default() }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if !self.mem_bw_threshold_gbps.is_finite() || self.mem_bw_threshold_gbps <= 0.0 {
            return Err("saturation threshold must be positive".into());
        }
        if !self.phase_threshold.is_finite() || self.phase_threshold <= 0.0 {
            return Err("phase threshold must be positive".into());
        }
        if !(0.0 < self.stability_alpha && self.stability_alpha < 1.0) {
            return Err("stability alpha must be in (0,1)".into());
        }
        if self.max_cooldown_periods < self.sampling_cooldown_periods {
            return Err("max cooldown must be >= base cooldown".into());
        }
        self.sampling.validate()?;
        Ok(())
    }

    /// Validates the configuration against a concrete cache geometry (e.g.
    /// custom sampling candidates must fit `1..n_ways`).
    pub fn validate_for(&self, n_ways: u32) -> Result<(), String> {
        self.validate()?;
        self.sampling.validate_for(n_ways)
    }
}

/// Which controller activity is in progress (exposed for tests, tracing and
/// the ablation benches).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DicerState {
    /// Sweeping candidate allocations, one per period.
    Sampling,
    /// Normal steady-state optimisation (Listing 2).
    Optimising,
    /// A reset was applied last period and is being validated (Listing 3).
    ValidatingReset,
}

impl DicerState {
    /// Stable snake_case label, used in decision traces and logs.
    pub fn as_str(&self) -> &'static str {
        match self {
            DicerState::Sampling => "sampling",
            DicerState::Optimising => "optimising",
            DicerState::ValidatingReset => "validating_reset",
        }
    }
}

#[derive(Debug, Clone)]
enum State {
    Sampling {
        /// Candidates not yet applied.
        queue: VecDeque<u32>,
        /// Allocation applied during the period being measured next.
        current: u32,
        /// Best (ways, ipc) observed so far.
        best: Option<(u32, f64)>,
    },
    Optimising,
    ValidatingReset {
        ct_favoured: bool,
        /// Allocation to fall back to if the reset did not help (CT-F path).
        rollback: u32,
        /// HP IPC of the period that triggered the reset.
        trigger_ipc: f64,
    },
}

/// The DICER dynamic cache-partitioning controller.
#[derive(Debug, Clone)]
pub struct Dicer {
    cfg: DicerConfig,
    name: &'static str,
    state: State,
    /// Current HP allocation in ways (the plan in force).
    hp_ways: u32,
    /// HP bandwidth of up to the last three periods (Eq. 2 window).
    bw_history: VecDeque<f64>,
    /// HP IPC of the previous period (Eq. 3 reference).
    prev_ipc: Option<f64>,
    /// Best-known allocation for CT-T workloads.
    optimal_allocation: u32,
    /// HP IPC measured at `optimal_allocation` during the last sampling.
    ipc_opt: Option<f64>,
    /// Whether the workload is still presumed CT-Favoured.
    ct_favoured: bool,
    /// Periods remaining before saturation may re-trigger sampling.
    sampling_cooldown: u32,
    /// Cool-down to impose after the next sampling pass (backs off
    /// exponentially while sampling keeps blaming unfixable saturation).
    next_cooldown: u32,
    /// Periods observed so far (missing ones included) — the timestamp on
    /// emitted controller events.
    periods_seen: u64,
    /// Telemetry handle; off by default.
    telemetry: Telemetry,
    /// Decision counters for introspection/ablation.
    pub stats: DicerStats,
}

/// Decision counters for introspection and the ablation benches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DicerStats {
    /// Periods spent sampling.
    pub sampling_periods: u64,
    /// One-way shrink steps taken.
    pub shrinks: u64,
    /// Resets triggered (either path).
    pub resets: u64,
    /// Phase changes detected (Eq. 2).
    pub phase_changes: u64,
    /// Periods in which saturation was observed.
    pub saturated_periods: u64,
    /// Periods whose monitoring sample never arrived (holdover applied).
    pub missing_periods: u64,
}

impl From<DicerStats> for ControllerCounters {
    fn from(s: DicerStats) -> Self {
        ControllerCounters {
            sampling_periods: s.sampling_periods,
            shrinks: s.shrinks,
            resets: s.resets,
            phase_changes: s.phase_changes,
            saturated_periods: s.saturated_periods,
            missing_periods: s.missing_periods,
        }
    }
}

impl Dicer {
    /// Builds the controller; panics on invalid configuration.
    pub fn new(cfg: DicerConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid DicerConfig: {e}");
        }
        Self::with_name(cfg, "DICER")
    }

    /// Builds the controller with an alternate display name (used for the
    /// DCP-QoS related-work variant, which shares the state machine).
    pub fn with_name(cfg: DicerConfig, name: &'static str) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid DicerConfig: {e}");
        }
        let next_cooldown = cfg.sampling_cooldown_periods;
        Self {
            cfg,
            name,
            state: State::Optimising,
            hp_ways: 0, // set by initial_plan
            bw_history: VecDeque::with_capacity(3),
            prev_ipc: None,
            optimal_allocation: 0,
            ipc_opt: None,
            ct_favoured: true,
            sampling_cooldown: 0,
            next_cooldown,
            periods_seen: 0,
            telemetry: Telemetry::off(),
            stats: DicerStats::default(),
        }
    }

    /// Display name (`"DICER"` unless built via [`Dicer::with_name`]).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// DICER begins exactly like CT (Listing 1 preamble): HP gets `N − 1`
    /// ways, all BEs share one, and the workload is presumed CT-Favoured.
    pub fn initial_plan(&self, n_ways: u32) -> PartitionPlan {
        PartitionPlan::cache_takeover(n_ways)
    }

    /// Attach a telemetry handle; every decision emits a structured event.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Current coarse state (for tests and tracing).
    pub fn state(&self) -> DicerState {
        match self.state {
            State::Sampling { .. } => DicerState::Sampling,
            State::Optimising => DicerState::Optimising,
            State::ValidatingReset { .. } => DicerState::ValidatingReset,
        }
    }

    /// Whether the workload is currently classified CT-Favoured.
    pub fn ct_favoured(&self) -> bool {
        self.ct_favoured
    }

    /// Current HP allocation in ways.
    pub fn hp_ways(&self) -> u32 {
        self.hp_ways
    }

    /// Periods observed so far, missing ones included (the timestamp on
    /// emitted controller events).
    pub fn periods_seen(&self) -> u64 {
        self.periods_seen
    }

    /// Coarse severity of the cache loop: steady optimisation is nominal,
    /// validating a reset is an adjustment, and a sampling sweep means
    /// contention was detected and is being fought.
    pub fn severity(&self) -> Severity {
        match self.state {
            State::Optimising => Severity::Nominal,
            State::ValidatingReset { .. } => Severity::Adjusting,
            State::Sampling { .. } => Severity::Degraded,
        }
    }

    /// Emit a controller event stamped with the current period counter.
    fn note(&self, event: ControllerEvent) {
        self.telemetry.emit(&TelemetryEvent::Controller { period: self.periods_seen, event });
    }

    /// Holdover for a period whose monitoring sample never arrived (dropped
    /// CMT/MBM read). A lost sample carries no information about the
    /// workload, so the controller keeps its state machine, Eq. 2 window
    /// and Eq. 3 reference untouched and re-enforces the plan already in
    /// force — a dropped period can neither trigger a spurious phase change
    /// nor feed a phantom IPC into the optimisation loop. Cool-downs still
    /// tick: a period of wall-clock time did elapse.
    pub fn on_missing_period(&mut self, n_ways: u32) -> PartitionPlan {
        if self.hp_ways == 0 {
            self.hp_ways = n_ways - 1; // first period ran under initial_plan
            self.optimal_allocation = n_ways - 1;
        }
        self.periods_seen += 1;
        self.stats.missing_periods += 1;
        self.sampling_cooldown = self.sampling_cooldown.saturating_sub(1);
        self.note(ControllerEvent::MissingPeriod);
        PartitionPlan::Split { hp_ways: self.hp_ways }
    }

    fn saturated(&self, sample: &PeriodSample) -> bool {
        sample.total_bw_gbps > self.cfg.mem_bw_threshold_gbps
    }

    /// Eq. 2: HP bandwidth exceeds `(1 + phase_threshold) ×` the geometric
    /// mean of the previous three periods. Requires a full window.
    fn phase_change(&self, hp_bw: f64) -> bool {
        if self.bw_history.len() < 3 {
            return false;
        }
        // Eq. 2 is undefined over a window containing a zero (or garbage)
        // bandwidth reading: the geometric mean collapses towards zero and
        // the next ordinary period would register as a spurious phase
        // change. Such readings come from dropped MBM samples or idle
        // phases, not from the workload — hold until the window refills.
        if self.bw_history.iter().any(|b| !b.is_finite() || *b <= 0.0) || !hp_bw.is_finite() {
            return false;
        }
        let gm = self.bw_history.iter().map(|b| b.ln()).sum::<f64>() / 3.0;
        hp_bw > (1.0 + self.cfg.phase_threshold) * gm.exp()
    }

    fn push_bw(&mut self, hp_bw: f64) {
        if self.bw_history.len() == 3 {
            self.bw_history.pop_front();
        }
        self.bw_history.push_back(hp_bw);
    }

    fn begin_sampling(&mut self, n_ways: u32) -> PartitionPlan {
        self.ct_favoured = false;
        let mut queue: VecDeque<u32> = self.cfg.sampling.candidates(n_ways).into();
        let first = queue.pop_front().expect("sampling ladder is never empty");
        self.state = State::Sampling { queue, current: first, best: None };
        self.bw_history.clear();
        self.note(ControllerEvent::SamplingStarted { first_ways: first });
        self.enforce(first)
    }

    /// Listing 3 entry point: apply the reset allocation and move to the
    /// validation state.
    fn reset(&mut self, n_ways: u32, trigger_ipc: f64, cause: ResetCause) -> PartitionPlan {
        self.stats.resets += 1;
        let rollback = self.hp_ways;
        let target = if self.ct_favoured { n_ways - 1 } else { self.optimal_allocation.max(1) };
        self.state =
            State::ValidatingReset { ct_favoured: self.ct_favoured, rollback, trigger_ipc };
        self.bw_history.clear();
        self.note(ControllerEvent::Reset { target_ways: target, cause });
        self.enforce(target)
    }

    fn enforce(&mut self, hp_ways: u32) -> PartitionPlan {
        self.hp_ways = hp_ways;
        PartitionPlan::Split { hp_ways }
    }

    /// One Listing 1–3 state-machine step over a delivered sample. This is
    /// the single implementation; both the [`Policy`] and [`Controller`]
    /// facades route through it.
    pub fn on_period(&mut self, sample: &PeriodSample, n_ways: u32) -> PartitionPlan {
        if self.hp_ways == 0 {
            self.hp_ways = n_ways - 1; // first period ran under initial_plan
            self.optimal_allocation = n_ways - 1;
        }
        self.periods_seen += 1;
        let ipc = sample.hp.ipc;
        let hp_bw = sample.hp.mem_bw_gbps;
        let saturated_now = self.saturated(sample);
        if saturated_now {
            self.stats.saturated_periods += 1;
        }
        // A cool-down after each completed sampling pass keeps persistent
        // (partitioning-proof) saturation from re-triggering the sweep every
        // single period; see `DicerConfig::sampling_cooldown_periods`.
        let saturated = saturated_now && self.sampling_cooldown == 0;
        self.sampling_cooldown = self.sampling_cooldown.saturating_sub(1);

        let plan = match std::mem::replace(&mut self.state, State::Optimising) {
            State::Sampling { mut queue, current, best } => {
                self.stats.sampling_periods += 1;
                // Associate the measured IPC with the allocation in force.
                let best = match best {
                    Some((bw_ways, bi)) if bi >= ipc => Some((bw_ways, bi)),
                    _ => Some((current, ipc)),
                };
                match queue.pop_front() {
                    Some(next) => {
                        self.state = State::Sampling { queue, current: next, best };
                        self.note(ControllerEvent::SamplingProbe { ways: next });
                        self.enforce(next)
                    }
                    None => {
                        let (opt, ipc_opt) = best.expect("at least one sample measured");
                        self.optimal_allocation = opt;
                        self.ipc_opt = Some(ipc_opt);
                        self.prev_ipc = Some(ipc_opt);
                        self.state = State::Optimising;
                        // Arm the post-sampling cool-down. If the sweep
                        // concluded that the largest allocation is best, the
                        // saturation is not fixable by partitioning — back
                        // off exponentially before probing again.
                        self.sampling_cooldown = self.next_cooldown;
                        let largest = self.cfg.sampling.candidates(n_ways)[0];
                        self.next_cooldown = if opt == largest {
                            (self.next_cooldown * 2).min(self.cfg.max_cooldown_periods)
                        } else {
                            self.cfg.sampling_cooldown_periods
                        };
                        self.note(ControllerEvent::SamplingConcluded {
                            optimal_ways: opt,
                            ipc_opt,
                            cooldown: self.sampling_cooldown,
                        });
                        self.enforce(opt)
                    }
                }
            }

            State::ValidatingReset { ct_favoured, rollback, trigger_ipc } => {
                if saturated {
                    self.begin_sampling(n_ways)
                } else if ct_favoured {
                    let a = self.cfg.stability_alpha;
                    if ipc > (1.0 + a) * trigger_ipc {
                        // Reset was right: continue optimising from CT.
                        self.state = State::Optimising;
                        self.note(ControllerEvent::Hold {
                            ways: self.hp_ways,
                            reason: HoldReason::ResetValidated,
                        });
                        PartitionPlan::Split { hp_ways: self.hp_ways }
                    } else {
                        // The dip was a phase with lower IPC, not our doing:
                        // revert to the allocation that triggered the reset.
                        self.state = State::Optimising;
                        self.note(ControllerEvent::Rollback { ways: rollback });
                        self.enforce(rollback)
                    }
                } else {
                    let a = self.cfg.stability_alpha;
                    let near_opt = self
                        .ipc_opt
                        .map(|opt| ipc >= (1.0 - a) * opt)
                        .unwrap_or(false);
                    if near_opt {
                        self.state = State::Optimising;
                        self.note(ControllerEvent::Hold {
                            ways: self.hp_ways,
                            reason: HoldReason::NearOptimum,
                        });
                        PartitionPlan::Split { hp_ways: self.hp_ways }
                    } else {
                        // The optimum moved: sample afresh.
                        self.begin_sampling(n_ways)
                    }
                }
            }

            State::Optimising => {
                if saturated {
                    self.begin_sampling(n_ways)
                } else if saturated_now {
                    // Saturated but inside the sampling cool-down: Listing 2's
                    // optimisation assumes an unsaturated link, so hold the
                    // allocation rather than misreading bandwidth noise as
                    // cache headroom.
                    self.state = State::Optimising;
                    self.note(ControllerEvent::Hold {
                        ways: self.hp_ways,
                        reason: HoldReason::SaturatedCooldown,
                    });
                    PartitionPlan::Split { hp_ways: self.hp_ways }
                } else if self.phase_change(hp_bw) {
                    self.stats.phase_changes += 1;
                    self.note(ControllerEvent::PhaseChange { hp_bw_gbps: hp_bw });
                    self.reset(n_ways, ipc, ResetCause::PhaseChange)
                } else {
                    match self.prev_ipc {
                        None => {
                            // First observation: just hold.
                            self.state = State::Optimising;
                            self.note(ControllerEvent::Hold {
                                ways: self.hp_ways,
                                reason: HoldReason::Priming,
                            });
                            PartitionPlan::Split { hp_ways: self.hp_ways }
                        }
                        Some(prev) => {
                            let a = self.cfg.stability_alpha;
                            if ipc >= (1.0 - a) * prev && ipc <= (1.0 + a) * prev {
                                // Stable: give one way to the BEs.
                                self.state = State::Optimising;
                                if self.hp_ways > 1 {
                                    self.stats.shrinks += 1;
                                    let w = self.hp_ways - 1;
                                    self.note(ControllerEvent::Shrink {
                                        from_ways: self.hp_ways,
                                        to_ways: w,
                                    });
                                    self.enforce(w)
                                } else {
                                    self.note(ControllerEvent::Hold {
                                        ways: 1,
                                        reason: HoldReason::Floor,
                                    });
                                    PartitionPlan::Split { hp_ways: 1 }
                                }
                            } else if ipc > (1.0 + a) * prev {
                                // Better: same cache needs, higher-IPC phase.
                                self.state = State::Optimising;
                                self.note(ControllerEvent::Hold {
                                    ways: self.hp_ways,
                                    reason: HoldReason::Improved,
                                });
                                PartitionPlan::Split { hp_ways: self.hp_ways }
                            } else {
                                // Worse: our shrink (or a slow phase) hurt.
                                self.reset(n_ways, ipc, ResetCause::Degradation)
                            }
                        }
                    }
                }
            }
        };

        self.push_bw(hp_bw);
        self.prev_ipc = Some(ipc);
        debug_assert!(plan.validate(n_ways).is_ok());
        plan
    }
}

impl Controller for Dicer {
    fn name(&self) -> &'static str {
        self.name
    }

    fn initial_plan(&self, n_ways: u32) -> PartitionPlan {
        Dicer::initial_plan(self, n_ways)
    }

    fn observe_and_update(&mut self, obs: &Observation<'_>) -> Decision {
        let plan = match obs.sample {
            Some(sample) => Dicer::on_period(self, sample, obs.n_ways),
            None => Dicer::on_missing_period(self, obs.n_ways),
        };
        Decision::cache_only(plan)
    }

    fn summary(&self) -> Summary {
        Summary {
            name: self.name,
            state: self.state().as_str(),
            severity: self.severity(),
            periods_seen: self.periods_seen,
            hp_ways: self.hp_ways,
            mba_level: MbaLevel::FULL,
            admitted_bes: None,
            counters: self.stats.into(),
        }
    }

    fn set_telemetry(&mut self, telemetry: Telemetry) {
        Dicer::set_telemetry(self, telemetry);
    }
}

impl Policy for Dicer {
    fn name(&self) -> &'static str {
        self.name
    }

    fn initial_plan(&self, n_ways: u32) -> PartitionPlan {
        Dicer::initial_plan(self, n_ways)
    }

    fn set_telemetry(&mut self, telemetry: Telemetry) {
        Dicer::set_telemetry(self, telemetry);
    }

    fn on_missing_period(&mut self, n_ways: u32) -> PartitionPlan {
        self.observe_and_update(&Observation::missing(n_ways)).plan
    }

    fn on_period(&mut self, sample: &PeriodSample, n_ways: u32) -> PartitionPlan {
        self.observe_and_update(&Observation::delivered(sample, n_ways)).plan
    }

    fn state_label(&self) -> Option<&'static str> {
        Some(self.state().as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dicer_rdt::PerAppSample;

    const N: u32 = 20;

    fn sample(hp_ipc: f64, hp_bw: f64, total_bw: f64) -> PeriodSample {
        let hp = PerAppSample { ipc: hp_ipc, llc_occupancy_bytes: 0, mem_bw_gbps: hp_bw, miss_ratio: 0.1 };
        let be = PerAppSample { ipc: 0.5, llc_occupancy_bytes: 0, mem_bw_gbps: (total_bw - hp_bw) / 9.0, miss_ratio: 0.3 };
        PeriodSample { time_s: 0.0, hp, bes: vec![be; 9], total_bw_gbps: total_bw }
    }

    fn dicer() -> Dicer {
        Dicer::new(DicerConfig::default())
    }

    #[test]
    fn starts_like_ct() {
        let d = dicer();
        assert_eq!(d.initial_plan(N), PartitionPlan::Split { hp_ways: 19 });
        assert!(d.ct_favoured());
    }

    #[test]
    fn stable_ipc_shrinks_hp_one_way_per_period() {
        let mut d = dicer();
        let mut plan = d.initial_plan(N);
        // The first observed period only primes prev_ipc (hold at 19).
        for expected in [19, 19, 18, 17] {
            assert_eq!(plan, PartitionPlan::Split { hp_ways: expected });
            plan = d.on_period(&sample(1.0, 5.0, 20.0), N);
        }
        assert_eq!(d.stats.shrinks, 3, "first period only primes prev_ipc");
    }

    #[test]
    fn shrink_floors_at_one_way() {
        let mut d = dicer();
        d.initial_plan(N);
        for _ in 0..40 {
            d.on_period(&sample(1.0, 5.0, 20.0), N);
        }
        assert_eq!(d.hp_ways(), 1);
    }

    #[test]
    fn improvement_holds_allocation() {
        let mut d = dicer();
        d.initial_plan(N);
        d.on_period(&sample(1.0, 5.0, 20.0), N); // prime
        d.on_period(&sample(1.0, 5.0, 20.0), N); // stable -> 18
        let w = d.hp_ways();
        let plan = d.on_period(&sample(1.3, 5.0, 20.0), N); // +30% better
        assert_eq!(plan, PartitionPlan::Split { hp_ways: w }, "hold on improvement");
    }

    #[test]
    fn degradation_resets_to_ct_when_ct_favoured() {
        let mut d = dicer();
        d.initial_plan(N);
        d.on_period(&sample(1.0, 5.0, 20.0), N);
        d.on_period(&sample(1.0, 5.0, 20.0), N); // 18
        d.on_period(&sample(1.0, 5.0, 20.0), N); // 17
        let plan = d.on_period(&sample(0.8, 5.0, 20.0), N); // -20%: worse
        assert_eq!(plan, PartitionPlan::Split { hp_ways: 19 }, "reset to CT");
        assert_eq!(d.state(), DicerState::ValidatingReset);
        assert_eq!(d.stats.resets, 1);
    }

    #[test]
    fn ct_favoured_reset_validation_keeps_ct_on_recovery() {
        let mut d = dicer();
        d.initial_plan(N);
        d.on_period(&sample(1.0, 5.0, 20.0), N);
        d.on_period(&sample(1.0, 5.0, 20.0), N);
        d.on_period(&sample(0.8, 5.0, 20.0), N); // reset to 19
        let plan = d.on_period(&sample(1.0, 5.0, 20.0), N); // recovered > (1+a)*0.8
        assert_eq!(plan, PartitionPlan::Split { hp_ways: 19 });
        assert_eq!(d.state(), DicerState::Optimising);
    }

    #[test]
    fn ct_favoured_reset_rolls_back_when_no_recovery() {
        let mut d = dicer();
        d.initial_plan(N);
        d.on_period(&sample(1.0, 5.0, 20.0), N);
        d.on_period(&sample(1.0, 5.0, 20.0), N); // 18
        d.on_period(&sample(0.8, 5.0, 20.0), N); // reset: rollback = 18
        let plan = d.on_period(&sample(0.8, 5.0, 20.0), N); // no recovery
        assert_eq!(plan, PartitionPlan::Split { hp_ways: 18 }, "roll back");
    }

    #[test]
    fn saturation_triggers_sampling_and_clears_ct_favoured() {
        let mut d = dicer();
        d.initial_plan(N);
        let plan = d.on_period(&sample(1.0, 5.0, 60.0), N);
        assert_eq!(d.state(), DicerState::Sampling);
        assert!(!d.ct_favoured());
        // First candidate of the geometric ladder is 19.
        assert_eq!(plan, PartitionPlan::Split { hp_ways: 19 });
    }

    #[test]
    fn sampling_sweeps_ladder_then_picks_argmax() {
        let mut d = dicer();
        d.initial_plan(N);
        d.on_period(&sample(1.0, 5.0, 60.0), N); // -> sampling, applying 19
        let ladder = SamplingStrategy::Geometric.candidates(N);
        assert_eq!(ladder, vec![19, 13, 9, 6, 4, 2, 1]);
        // Feed IPCs that peak at candidate "6".
        let ipc_for = |w: u32| match w {
            6 => 1.5,
            4 => 1.2,
            _ => 0.9,
        };
        let mut plan = PartitionPlan::Split { hp_ways: 19 };
        for &w in &ladder {
            // Period running at `w` just ended; report its IPC (unsaturated).
            plan = d.on_period(&sample(ipc_for(w), 5.0, 20.0), N);
        }
        assert_eq!(plan, PartitionPlan::Split { hp_ways: 6 }, "argmax enforced");
        assert_eq!(d.state(), DicerState::Optimising);
        assert_eq!(d.hp_ways(), 6);
    }

    #[test]
    fn phase_change_detected_by_bandwidth_jump() {
        let mut d = dicer();
        d.initial_plan(N);
        // Three stable periods to fill the Eq. 2 window. Keep IPC identical
        // so only a bandwidth jump can trigger the reset.
        d.on_period(&sample(1.0, 5.0, 20.0), N);
        d.on_period(&sample(1.0, 5.0, 20.0), N);
        d.on_period(&sample(1.0, 5.0, 20.0), N);
        assert_eq!(d.stats.phase_changes, 0);
        // 40% bandwidth jump with stable IPC -> phase change -> reset to CT.
        let plan = d.on_period(&sample(1.0, 7.0, 22.0), N);
        assert_eq!(d.stats.phase_changes, 1);
        assert_eq!(plan, PartitionPlan::Split { hp_ways: 19 });
    }

    #[test]
    fn small_bandwidth_noise_is_not_a_phase_change() {
        let mut d = dicer();
        d.initial_plan(N);
        d.on_period(&sample(1.0, 5.0, 20.0), N);
        d.on_period(&sample(1.0, 5.1, 20.0), N);
        d.on_period(&sample(1.0, 4.9, 20.0), N);
        d.on_period(&sample(1.0, 5.5, 20.0), N); // +10%: below 30% threshold
        assert_eq!(d.stats.phase_changes, 0);
    }

    #[test]
    fn ct_thwarted_reset_returns_to_sampled_optimum() {
        let mut d = dicer();
        d.initial_plan(N);
        d.on_period(&sample(1.0, 5.0, 60.0), N); // begin sampling
        let ladder = SamplingStrategy::Geometric.candidates(N);
        for &w in &ladder {
            d.on_period(&sample(if w == 4 { 1.4 } else { 1.0 }, 5.0, 20.0), N);
        }
        assert_eq!(d.hp_ways(), 4);
        // Stable periods shrink below the optimum…
        d.on_period(&sample(1.4, 5.0, 20.0), N); // prime/stable -> 3
        // …then a degradation resets to optimal_allocation (4), not CT.
        let plan = d.on_period(&sample(0.9, 5.0, 20.0), N);
        assert_eq!(plan, PartitionPlan::Split { hp_ways: 4 });
        assert_eq!(d.state(), DicerState::ValidatingReset);
        // Validation: IPC near IPC_opt (1.4) -> proceed optimising.
        let plan = d.on_period(&sample(1.38, 5.0, 20.0), N);
        assert_eq!(plan, PartitionPlan::Split { hp_ways: 4 });
        assert_eq!(d.state(), DicerState::Optimising);
    }

    #[test]
    fn ct_thwarted_validation_failure_resamples() {
        let mut d = dicer();
        d.initial_plan(N);
        d.on_period(&sample(1.0, 5.0, 60.0), N);
        let ladder = SamplingStrategy::Geometric.candidates(N);
        for &w in &ladder {
            d.on_period(&sample(if w == 4 { 1.4 } else { 1.0 }, 5.0, 20.0), N);
        }
        d.on_period(&sample(1.4, 5.0, 20.0), N);
        d.on_period(&sample(0.9, 5.0, 20.0), N); // reset -> validating
        // Far from IPC_opt: the optimum moved; sampling restarts.
        d.on_period(&sample(0.9, 5.0, 20.0), N);
        assert_eq!(d.state(), DicerState::Sampling);
    }

    #[test]
    fn saturation_during_validation_resamples() {
        let mut d = dicer();
        d.initial_plan(N);
        d.on_period(&sample(1.0, 5.0, 20.0), N);
        d.on_period(&sample(1.0, 5.0, 20.0), N);
        d.on_period(&sample(0.8, 5.0, 20.0), N); // reset (CT-F path)
        d.on_period(&sample(0.8, 5.0, 60.0), N); // saturated during validation
        assert_eq!(d.state(), DicerState::Sampling);
        assert!(!d.ct_favoured());
    }

    #[test]
    fn persistent_saturation_is_rate_limited_by_cooldown() {
        let mut d = dicer();
        d.initial_plan(N);
        // Saturated forever; IPC is best at the largest allocation.
        d.on_period(&sample(1.0, 5.0, 60.0), N); // enter sampling
        let ladder = SamplingStrategy::Geometric.candidates(N);
        for &w in &ladder {
            d.on_period(&sample(w as f64, 5.0, 60.0), N); // ipc grows with ways
        }
        assert_eq!(d.hp_ways(), 19, "argmax is the largest candidate");
        let sampled_before = d.stats.sampling_periods;
        // For the next `sampling_cooldown_periods` periods saturation must
        // NOT re-trigger sampling.
        for _ in 0..DicerConfig::default().sampling_cooldown_periods {
            d.on_period(&sample(19.0, 5.0, 60.0), N);
            assert_eq!(d.stats.sampling_periods, sampled_before, "resampled inside cooldown");
        }
        // After the cooldown it may sample again...
        d.on_period(&sample(19.0, 5.0, 60.0), N);
        assert_eq!(d.state(), DicerState::Sampling);
        // ...and because the last sweep blamed unfixable saturation, the
        // *next* cooldown is twice as long (exponential backoff).
        for &w in &ladder {
            d.on_period(&sample(w as f64, 5.0, 60.0), N);
        }
        let sampled_mid = d.stats.sampling_periods;
        for _ in 0..2 * DicerConfig::default().sampling_cooldown_periods {
            d.on_period(&sample(19.0, 5.0, 60.0), N);
        }
        assert_eq!(d.stats.sampling_periods, sampled_mid, "backoff not applied");
    }

    #[test]
    fn linear_ladder_structure() {
        let v = SamplingStrategy::Linear { step: 3 }.candidates(20);
        assert_eq!(v.first(), Some(&19));
        assert_eq!(v.last(), Some(&1));
        assert!(v.windows(2).all(|w| w[1] < w[0]));
    }

    #[test]
    fn custom_ladder_must_decrease() {
        assert!(SamplingStrategy::Custom(vec![5, 7]).validate().is_err());
        assert!(SamplingStrategy::Custom(vec![7, 7]).validate().is_err());
        assert!(SamplingStrategy::Custom(vec![7, 5, 2]).validate().is_ok());
    }

    #[test]
    fn custom_ladder_rejected_at_construction_not_mid_run() {
        // An invalid custom ladder is refused by `Dicer::new` via
        // `DicerConfig::validate`, instead of panicking when saturation
        // first triggers a sweep mid-run.
        let cfg = DicerConfig {
            sampling: SamplingStrategy::Custom(vec![5, 7]),
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
        let empty = DicerConfig {
            sampling: SamplingStrategy::Custom(vec![]),
            ..Default::default()
        };
        assert!(empty.validate().is_err());
        let zero_way = DicerConfig {
            sampling: SamplingStrategy::Custom(vec![5, 0]),
            ..Default::default()
        };
        assert!(zero_way.validate().is_err());
    }

    #[test]
    #[should_panic]
    fn dicer_new_panics_on_invalid_custom_ladder() {
        Dicer::new(DicerConfig {
            sampling: SamplingStrategy::Custom(vec![5, 7]),
            ..Default::default()
        });
    }

    #[test]
    fn validate_for_checks_cache_geometry() {
        let cfg = DicerConfig {
            sampling: SamplingStrategy::Custom(vec![12, 6, 1]),
            ..Default::default()
        };
        assert!(cfg.validate_for(20).is_ok());
        // Candidate 12 does not fit an 8-way cache (range is 1..8).
        assert!(cfg.validate_for(8).is_err());
        // A 1-way cache cannot be partitioned at all.
        assert!(DicerConfig::default().validate_for(1).is_err());
    }

    #[test]
    fn custom_ladder_out_of_range_candidates_are_dropped() {
        // Structurally valid but oversized for this cache: candidates are
        // clamped into range rather than panicking the sweep.
        let v = SamplingStrategy::Custom(vec![12, 6, 1]).candidates(8);
        assert_eq!(v, vec![6, 1]);
        let all_oversized = SamplingStrategy::Custom(vec![12, 10]).candidates(8);
        assert_eq!(all_oversized, vec![1], "degenerates to the one-way ladder");
    }

    #[test]
    fn linear_step_larger_than_cache_yields_two_point_ladder() {
        // step > n_ways: one probe at N-1, then straight to the floor.
        let v = SamplingStrategy::Linear { step: 30 }.candidates(20);
        assert_eq!(v, vec![19, 1]);
    }

    #[test]
    fn linear_zero_step_rejected_but_candidates_still_total() {
        assert!(SamplingStrategy::Linear { step: 0 }.validate().is_err());
        // Defence in depth: even if validation is bypassed, candidates()
        // treats step 0 as 1 instead of looping or panicking.
        let v = SamplingStrategy::Linear { step: 0 }.candidates(4);
        assert_eq!(v, vec![3, 2, 1]);
    }

    #[test]
    fn two_way_cache_ladders_are_single_candidate() {
        assert_eq!(SamplingStrategy::Geometric.candidates(2), vec![1]);
        assert_eq!(SamplingStrategy::Linear { step: 1 }.candidates(2), vec![1]);
        assert_eq!(SamplingStrategy::Custom(vec![1]).candidates(2), vec![1]);
    }

    #[test]
    fn two_way_cache_full_controller_round_trip() {
        // The whole state machine must work on the smallest partitionable
        // cache: initial CT split, a sampling sweep (single candidate) and
        // return to optimising, without panics.
        let mut d = dicer();
        assert_eq!(d.initial_plan(2), PartitionPlan::Split { hp_ways: 1 });
        d.on_period(&sample(1.0, 5.0, 60.0), 2); // saturated -> sampling
        assert_eq!(d.state(), DicerState::Sampling);
        d.on_period(&sample(1.0, 5.0, 20.0), 2); // sweep of [1] ends
        assert_eq!(d.state(), DicerState::Optimising);
        assert_eq!(d.hp_ways(), 1);
    }

    #[test]
    fn phase_change_needs_full_window() {
        // Fewer than three recorded periods: even a huge bandwidth jump
        // must not register as an Eq. 2 phase change.
        let mut d = dicer();
        d.initial_plan(N);
        d.on_period(&sample(1.0, 5.0, 20.0), N); // history: [5]
        d.on_period(&sample(1.0, 5.0, 20.0), N); // history: [5, 5]
        d.on_period(&sample(1.0, 50.0, 20.0), N); // 10x jump, window short
        assert_eq!(d.stats.phase_changes, 0);
    }

    #[test]
    fn zero_bandwidth_period_suppresses_phase_change_until_window_refills() {
        let mut d = dicer();
        d.initial_plan(N);
        for _ in 0..3 {
            d.on_period(&sample(1.0, 5.0, 20.0), N);
        }
        // An idle (or dropped-MBM) period records 0 GB/s. Without the
        // guard the geometric mean collapses and the next ordinary period
        // reads as a phase change.
        d.on_period(&sample(1.0, 0.0, 20.0), N);
        d.on_period(&sample(1.0, 5.0, 20.0), N);
        assert_eq!(d.stats.phase_changes, 0, "zero-bw window must not fire Eq. 2");
        // Once three positive periods refill the window, detection resumes.
        for _ in 0..2 {
            d.on_period(&sample(1.0, 5.0, 20.0), N);
        }
        d.on_period(&sample(1.0, 8.0, 20.0), N); // +60% over geomean 5
        assert_eq!(d.stats.phase_changes, 1);
    }

    #[test]
    fn non_finite_bandwidth_never_fires_phase_change() {
        let mut d = dicer();
        d.initial_plan(N);
        for _ in 0..3 {
            d.on_period(&sample(1.0, 5.0, 20.0), N);
        }
        d.on_period(&sample(1.0, f64::NAN, 20.0), N);
        d.on_period(&sample(1.0, 8.0, 20.0), N); // NaN still in window
        assert_eq!(d.stats.phase_changes, 0);
    }

    #[test]
    fn missing_period_holds_plan_and_state() {
        let mut d = dicer();
        d.initial_plan(N);
        d.on_period(&sample(1.0, 5.0, 20.0), N); // prime
        d.on_period(&sample(1.0, 5.0, 20.0), N); // stable -> 18
        let before_ways = d.hp_ways();
        let before_state = d.state();
        let plan = d.on_missing_period(N);
        assert_eq!(plan, PartitionPlan::Split { hp_ways: before_ways });
        assert_eq!(d.state(), before_state);
        assert_eq!(d.stats.missing_periods, 1);
        // The next real period behaves exactly as if nothing was lost:
        // same stable IPC against the same Eq. 3 reference -> shrink.
        let shrinks = d.stats.shrinks;
        d.on_period(&sample(1.0, 5.0, 20.0), N);
        assert_eq!(d.stats.shrinks, shrinks + 1);
        assert_eq!(d.stats.resets, 0, "holdover must not fake a degradation");
    }

    #[test]
    fn missing_period_before_first_sample_enforces_ct_split() {
        let mut d = dicer();
        d.initial_plan(N);
        let plan = d.on_missing_period(N);
        assert_eq!(plan, PartitionPlan::Split { hp_ways: 19 });
        assert_eq!(d.stats.missing_periods, 1);
    }

    #[test]
    fn missing_period_does_not_poison_phase_window() {
        // A dropped sample leaves the Eq. 2 window untouched, so a genuine
        // bandwidth jump right after the gap is still detected.
        let mut d = dicer();
        d.initial_plan(N);
        for _ in 0..3 {
            d.on_period(&sample(1.0, 5.0, 20.0), N);
        }
        d.on_missing_period(N);
        d.on_period(&sample(1.0, 8.0, 20.0), N); // +60% over geomean 5
        assert_eq!(d.stats.phase_changes, 1);
    }

    #[test]
    fn missing_period_still_ticks_sampling_cooldown() {
        let mut d = dicer();
        d.initial_plan(N);
        d.on_period(&sample(1.0, 5.0, 60.0), N); // saturated -> sampling
        let ladder = SamplingStrategy::Geometric.candidates(N);
        for &w in &ladder {
            d.on_period(&sample(w as f64, 5.0, 60.0), N);
        }
        assert_eq!(d.state(), DicerState::Optimising);
        // Burn the whole cooldown with missing periods; wall-clock elapsed,
        // so saturation may trigger a fresh sweep immediately after.
        for _ in 0..DicerConfig::default().sampling_cooldown_periods {
            d.on_missing_period(N);
        }
        d.on_period(&sample(19.0, 5.0, 60.0), N);
        assert_eq!(d.state(), DicerState::Sampling);
    }

    #[test]
    fn dicer_state_labels_are_stable() {
        assert_eq!(DicerState::Sampling.as_str(), "sampling");
        assert_eq!(DicerState::Optimising.as_str(), "optimising");
        assert_eq!(DicerState::ValidatingReset.as_str(), "validating_reset");
    }

    #[test]
    #[should_panic]
    fn invalid_config_rejected() {
        Dicer::new(DicerConfig { stability_alpha: 0.0, ..Default::default() });
    }

    #[test]
    fn telemetry_narrates_every_decision() {
        use dicer_telemetry::{CollectingSink, Telemetry, TelemetryEvent};
        use std::sync::Arc;

        let sink = Arc::new(CollectingSink::new());
        let mut d = dicer();
        d.set_telemetry(Telemetry::new(sink.clone()));
        d.initial_plan(N);
        d.on_period(&sample(1.0, 5.0, 20.0), N); // prime -> hold
        d.on_period(&sample(1.0, 5.0, 20.0), N); // stable -> shrink
        d.on_missing_period(N);
        d.on_period(&sample(0.5, 5.0, 20.0), N); // degraded -> reset
        d.on_period(&sample(1.0, 5.0, 60.0), N); // saturated validation -> sampling

        let kinds: Vec<&'static str> = sink
            .events()
            .iter()
            .map(|e| match e {
                TelemetryEvent::Controller { event, .. } => event.kind(),
                other => panic!("unexpected event {other:?}"),
            })
            .collect();
        assert_eq!(
            kinds,
            vec!["hold", "shrink", "missing_period", "reset", "sampling_started"]
        );
        // Events are stamped with the 1-based period counter, missing
        // periods included.
        match &sink.events()[3] {
            TelemetryEvent::Controller { period, event: ControllerEvent::Reset { cause, .. } } => {
                assert_eq!(*period, 4);
                assert_eq!(*cause, ResetCause::Degradation);
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn detached_telemetry_changes_no_decision() {
        use dicer_telemetry::{CollectingSink, Telemetry};
        use std::sync::Arc;

        // An attached sink must be purely observational: plans are
        // identical with and without it, decision for decision.
        let mut plain = dicer();
        let mut instrumented = dicer();
        instrumented.set_telemetry(Telemetry::new(Arc::new(CollectingSink::new())));
        plain.initial_plan(N);
        instrumented.initial_plan(N);
        for i in 0..60u32 {
            let s = match i % 9 {
                0..=5 => sample(1.0, 5.0, 20.0),
                6 => sample(0.7, 5.0, 20.0),
                _ => sample(1.0, 5.0, 60.0),
            };
            assert_eq!(plain.on_period(&s, N), instrumented.on_period(&s, N));
        }
        assert_eq!(plain.stats, instrumented.stats);
    }
}
