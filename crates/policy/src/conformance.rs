//! The controller conformance kit: the executable contract every
//! registered controller must pass.
//!
//! Two layers:
//!
//! 1. **Script engine** — [`Step`]/[`Feed`]/[`run_script`]: table-driven
//!    per-period scripts with the *exact* expected plan and state label
//!    after every decision. The Listing 1–3 transition suite
//!    (`tests/controller_conformance.rs`) is written on this layer.
//! 2. **Contract clauses** — [`Clause`]/[`run_contract`]: behavioral
//!    predicates every controller in the [`ControllerRegistry`] must
//!    satisfy, whatever its internal ladder or thresholds:
//!
//!    * `starts-calibrating` — fresh controllers report zero periods at
//!      nominal severity, open with the Listing 1 CT preamble, and do not
//!      move on the first calm observation.
//!    * `detects-contention` — a saturated link raises severity above
//!      nominal and changes state within one period.
//!    * `recovers` — after detection, calm traffic returns the controller
//!      to nominal; governors must also unwind their throttle and
//!      admission controllers must re-admit evicted BEs.
//!    * `cooldown-backoff` — under *unfixable* saturation the gaps between
//!      successive sampling sweeps are non-trivial and non-decreasing
//!      (exponential backoff rather than permanent resampling).
//!    * `missing-period-holdover` — a dropped sample re-enforces the plan
//!      in force and changes neither state, severity, throttle, nor
//!      admission; only the period clock and the missing counter advance.
//!    * `summary-consistent-with-state` — after every step the summary
//!      mirrors the decision (ways, throttle, admission), the period clock
//!      increments by exactly one, and the state label is non-empty. The
//!      engine checks these invariants on *every* scripted step of every
//!      clause; the dedicated clause drives a mixed feed (calm, hot,
//!      degradation, drops) through them.
//!
//! Every step of every clause also runs the structural invariants, so a
//! violation names the clause *and* the offending step. A registered
//! controller without a [`CONTRACT_TABLE`] row fails with the dedicated
//! [`Clause::TableEntry`] violation (enforced in ci's fast tier).

use crate::controller::{Controller, ControllerRegistry, ControllerSpec, Observation, Severity};
use crate::SamplingStrategy;
use dicer_rdt::{PartitionPlan, PerAppSample, PeriodSample};

/// Cache ways of the Table-1 server — the geometry every script runs on.
pub const N_WAYS: u32 = 20;

/// BEs co-located in every synthetic sample.
pub const N_BES: usize = 9;

/// A synthetic monitoring sample: HP at `(hp_ipc, hp_bw_gbps)`, the
/// remaining traffic split evenly over [`N_BES`] best-effort apps.
pub fn synthetic_sample(hp_ipc: f64, hp_bw_gbps: f64, total_bw_gbps: f64) -> PeriodSample {
    let hp = PerAppSample {
        ipc: hp_ipc,
        llc_occupancy_bytes: 0,
        mem_bw_gbps: hp_bw_gbps,
        miss_ratio: 0.1,
    };
    let be = PerAppSample {
        ipc: 0.5,
        llc_occupancy_bytes: 0,
        mem_bw_gbps: (total_bw_gbps - hp_bw_gbps) / N_BES as f64,
        miss_ratio: 0.3,
    };
    PeriodSample { time_s: 0.0, hp, bes: vec![be; N_BES], total_bw_gbps }
}

/// One period's input to the controller.
#[derive(Debug, Clone, Copy)]
pub enum Feed {
    /// A delivered sample: `(hp_ipc, hp_bw_gbps, total_bw_gbps)`.
    S(f64, f64, f64),
    /// A dropped sample (holdover period).
    Missing,
}

/// One scripted step: the feed, then the expected decision.
#[derive(Debug, Clone, Copy)]
pub struct Step {
    /// The period's input.
    pub feed: Feed,
    /// Expected HP ways of the plan returned for the next period.
    pub hp_ways: u32,
    /// Expected state label after the decision.
    pub state: &'static str,
}

/// Shorthand sample-step constructor, keeps script tables readable.
pub fn s(ipc: f64, hp_bw: f64, total: f64, hp_ways: u32, state: &'static str) -> Step {
    Step { feed: Feed::S(ipc, hp_bw, total), hp_ways, state }
}

/// Shorthand missing-sample step constructor.
pub fn miss(hp_ways: u32, state: &'static str) -> Step {
    Step { feed: Feed::Missing, hp_ways, state }
}

/// Structural invariants checked after *every* step, scripted or driven:
/// the summary must mirror the decision and the period clock must tick.
fn check_invariants<C: Controller + ?Sized>(
    c: &C,
    before: &crate::Summary,
    decision: &crate::Decision,
    at: u64,
) -> Result<(), String> {
    let after = c.summary();
    if after.periods_seen != before.periods_seen + 1 {
        return Err(format!(
            "step {at}: periods_seen went {} -> {} (must increment by exactly one)",
            before.periods_seen, after.periods_seen
        ));
    }
    if after.state.is_empty() {
        return Err(format!("step {at}: empty state label"));
    }
    if after.name != before.name {
        return Err(format!(
            "step {at}: controller renamed itself {:?} -> {:?}",
            before.name, after.name
        ));
    }
    if let PartitionPlan::Split { hp_ways } = decision.plan {
        if after.hp_ways != hp_ways {
            return Err(format!(
                "step {at}: summary says {} HP ways but the decision enforced {hp_ways}",
                after.hp_ways
            ));
        }
    }
    if after.mba_level != decision.mba_level {
        return Err(format!(
            "step {at}: summary throttle {} != decision throttle {}",
            after.mba_level, decision.mba_level
        ));
    }
    if after.admitted_bes != decision.admitted_bes {
        return Err(format!(
            "step {at}: summary admits {:?} BEs but the decision admits {:?}",
            after.admitted_bes, decision.admitted_bes
        ));
    }
    Ok(())
}

/// Feeds one step and returns the decision after running the structural
/// invariants.
fn drive<C: Controller + ?Sized>(c: &mut C, feed: Feed) -> Result<crate::Decision, String> {
    let before = c.summary();
    let decision = match feed {
        Feed::S(ipc, hp_bw, total) => {
            let sample = synthetic_sample(ipc, hp_bw, total);
            c.observe_and_update(&Observation::delivered(&sample, N_WAYS))
        }
        Feed::Missing => c.observe_and_update(&Observation::missing(N_WAYS)),
    };
    check_invariants(c, &before, &decision, before.periods_seen + 1)?;
    Ok(decision)
}

/// Runs a script, checking the exact expected plan and state label at
/// every step (plus the structural invariants).
pub fn run_script<C: Controller + ?Sized>(c: &mut C, steps: &[Step]) -> Result<(), String> {
    for (i, step) in steps.iter().enumerate() {
        let decision = drive(c, step.feed)?;
        let expected = PartitionPlan::Split { hp_ways: step.hp_ways };
        if decision.plan != expected {
            return Err(format!(
                "script step {i} ({:?}): expected {expected:?}, got {:?}",
                step.feed, decision.plan
            ));
        }
        let state = c.summary().state;
        if state != step.state {
            return Err(format!(
                "script step {i} ({:?}): expected state {:?}, got {:?}",
                step.feed, step.state, state
            ));
        }
    }
    Ok(())
}

/// Feeds `feed` until `until(summary)` holds, at most `cap` periods.
fn feed_until<C: Controller + ?Sized>(
    c: &mut C,
    feed: Feed,
    cap: u32,
    what: &str,
    until: impl Fn(&crate::Summary) -> bool,
) -> Result<u32, String> {
    for i in 0..cap {
        if until(&c.summary()) {
            return Ok(i);
        }
        drive(c, feed)?;
    }
    if until(&c.summary()) {
        return Ok(cap);
    }
    Err(format!("{what}: not reached within {cap} periods (summary: {:?})", c.summary()))
}

/// One conformance-contract clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Clause {
    /// The controller is registered but has no [`CONTRACT_TABLE`] row.
    TableEntry,
    /// Fresh controllers start nominal, with the CT preamble.
    StartsCalibrating,
    /// Saturation raises severity and changes state within a period.
    DetectsContention,
    /// Calm traffic returns the controller (and its throttle/admission
    /// layers) to nominal.
    Recovers,
    /// Unfixable saturation backs off instead of resampling forever.
    CooldownBackoff,
    /// A dropped sample holds every actuation and verdict.
    MissingPeriodHoldover,
    /// The summary mirrors the decision after every step.
    SummaryConsistent,
    /// The severity ladder is a stable placement signal: contention holds
    /// it above nominal without flapping (the fleet migration trigger).
    PlacementSignal,
}

impl Clause {
    /// The runnable clauses, in contract order ([`Clause::TableEntry`] is
    /// reported only when the table row is absent).
    pub const CONTRACT: [Clause; 7] = [
        Clause::StartsCalibrating,
        Clause::DetectsContention,
        Clause::Recovers,
        Clause::CooldownBackoff,
        Clause::MissingPeriodHoldover,
        Clause::SummaryConsistent,
        Clause::PlacementSignal,
    ];

    /// Stable kebab-case clause name (quoted by violations and ci).
    pub fn as_str(self) -> &'static str {
        match self {
            Clause::TableEntry => "table-entry",
            Clause::StartsCalibrating => "starts-calibrating",
            Clause::DetectsContention => "detects-contention",
            Clause::Recovers => "recovers",
            Clause::CooldownBackoff => "cooldown-backoff",
            Clause::MissingPeriodHoldover => "missing-period-holdover",
            Clause::SummaryConsistent => "summary-consistent-with-state",
            Clause::PlacementSignal => "placement-signal",
        }
    }
}

/// A named contract failure: which controller, which clause, and what went
/// wrong.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Registry key of the offending controller.
    pub controller: &'static str,
    /// The violated clause.
    pub clause: Clause,
    /// Step-level detail.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: clause '{}' violated: {}", self.controller, self.clause.as_str(), self.detail)
    }
}

/// Renders a violation list as one readable multi-line failure message
/// (what the conformance tests print on failure).
pub fn contract_violations_to_string(violations: &[Violation]) -> String {
    let mut out = String::from("contract violations:\n");
    for v in violations {
        out.push_str("  ");
        out.push_str(&v.to_string());
        out.push('\n');
    }
    out
}

/// What the contract must additionally exercise for a controller: which
/// actuation layers it owns beyond the cache loop.
#[derive(Debug, Clone, Copy)]
pub struct ContractEntry {
    /// Registry key this row covers.
    pub name: &'static str,
    /// The controller throttles BE bandwidth (MBA) and must unwind it.
    pub bandwidth_governor: bool,
    /// The controller evicts/re-admits BEs and must recover admission.
    pub admission_control: bool,
    /// The controller's severity ladder is a *stable placement signal*:
    /// sustained contention holds severity above nominal every period
    /// (no flapping back to nominal between sampling sweeps), so a fleet
    /// scheduler may use a severity streak as its migration trigger.
    /// Plain `dicer` does **not** claim this — between backoff sweeps
    /// under unfixable saturation it reports nominal again — which is
    /// exactly why the fleet's standard mix runs `dicer-adm`.
    pub placement_signal: bool,
}

/// The conformance table: one row per registered controller. A registered
/// controller without a row fails [`run_contract`] with
/// [`Clause::TableEntry`] — adding a policy means adding its row here.
pub const CONTRACT_TABLE: &[ContractEntry] = &[
    ContractEntry {
        name: "dicer",
        bandwidth_governor: false,
        admission_control: false,
        placement_signal: false,
    },
    ContractEntry {
        name: "dicer-mba",
        bandwidth_governor: true,
        admission_control: false,
        placement_signal: true,
    },
    ContractEntry {
        name: "dicer-adm",
        bandwidth_governor: true,
        admission_control: true,
        placement_signal: true,
    },
];

/// Looks up a controller's contract row by registry key.
pub fn contract_entry(name: &str) -> Option<&'static ContractEntry> {
    CONTRACT_TABLE.iter().find(|e| e.name == name)
}

/// Runs the full contract against one registered controller. Returns every
/// violated clause (empty = conformant).
pub fn run_contract(spec: &ControllerSpec) -> Vec<Violation> {
    let Some(entry) = contract_entry(spec.name) else {
        return vec![Violation {
            controller: spec.name,
            clause: Clause::TableEntry,
            detail: "registered controller has no CONTRACT_TABLE row; add one \
                     (see DESIGN.md §13 'how to add a policy')"
                .into(),
        }];
    };
    Clause::CONTRACT
        .iter()
        .filter_map(|&clause| {
            check_clause(spec, entry, clause)
                .err()
                .map(|detail| Violation { controller: spec.name, clause, detail })
        })
        .collect()
}

/// Runs the contract against every registered controller.
pub fn check_registry(registry: &ControllerRegistry) -> Vec<Violation> {
    registry.specs().iter().flat_map(run_contract).collect()
}

fn check_clause(
    spec: &ControllerSpec,
    entry: &ContractEntry,
    clause: Clause,
) -> Result<(), String> {
    let mut c = spec.build_controller();
    match clause {
        Clause::TableEntry => Ok(()),
        Clause::StartsCalibrating => starts_calibrating(&mut c),
        Clause::DetectsContention => detects_contention(&mut c),
        Clause::Recovers => recovers(&mut c, entry),
        Clause::CooldownBackoff => cooldown_backoff(&mut c),
        Clause::MissingPeriodHoldover => missing_period_holdover(&mut c),
        Clause::SummaryConsistent => summary_consistent(&mut c),
        Clause::PlacementSignal => placement_signal(&mut c, entry),
    }
}

/// Calm feed: stable HP, link well below the 50 Gbps threshold.
const CALM: Feed = Feed::S(1.0, 5.0, 20.0);
/// Saturated, BE-dominated feed: the link over threshold, BEs the heavy
/// consumers.
const HOT: Feed = Feed::S(1.0, 5.0, 60.0);
/// Throttled near-saturation hover: over threshold but close enough that
/// the admission detector's hover band (0.9×) is inside it.
const HOVER: Feed = Feed::S(1.0, 5.0, 52.0);

fn starts_calibrating<C: Controller + ?Sized>(c: &mut C) -> Result<(), String> {
    let fresh = c.summary();
    if fresh.periods_seen != 0 {
        return Err(format!("fresh controller claims {} periods seen", fresh.periods_seen));
    }
    if fresh.severity != Severity::Nominal {
        return Err(format!("fresh controller starts at severity {:?}", fresh.severity));
    }
    let initial = c.initial_plan(N_WAYS);
    let ct = PartitionPlan::cache_takeover(N_WAYS);
    if initial != ct {
        return Err(format!("initial plan {initial:?} is not the Listing 1 CT preamble {ct:?}"));
    }
    // The first calm observation is a calibration point, not a license to
    // move: the opening allocation must be held.
    let d = drive(c, CALM)?;
    if d.plan != ct {
        return Err(format!("moved to {:?} on the very first calm observation", d.plan));
    }
    if c.summary().severity != Severity::Nominal {
        return Err(format!("calm first period raised severity to {:?}", c.summary().severity));
    }
    Ok(())
}

fn detects_contention<C: Controller + ?Sized>(c: &mut C) -> Result<(), String> {
    c.initial_plan(N_WAYS);
    drive(c, CALM)?;
    let calm_state = c.summary().state;
    drive(c, HOT)?;
    let s = c.summary();
    if s.severity <= Severity::Nominal {
        return Err("a saturated link left severity at nominal".into());
    }
    if s.state == calm_state {
        return Err(format!("a saturated link left the state at {calm_state:?}"));
    }
    if s.counters.saturated_periods == 0 {
        return Err("the saturated period was not counted".into());
    }
    Ok(())
}

fn recovers<C: Controller + ?Sized>(c: &mut C, entry: &ContractEntry) -> Result<(), String> {
    // Detect, then let calm traffic carry the controller back to nominal.
    c.initial_plan(N_WAYS);
    drive(c, HOT)?;
    feed_until(c, CALM, 64, "cache loop back to nominal after calm traffic", |s| {
        s.severity == Severity::Nominal
    })?;

    if entry.bandwidth_governor {
        // Persistent BE-dominated saturation must engage the throttle...
        feed_until(c, HOT, 64, "governor engages the throttle under persistent saturation", |s| {
            s.mba_level.is_throttled()
        })?;
        if c.summary().severity <= Severity::Nominal {
            return Err("throttled governor still reports nominal severity".into());
        }
        // ...and calm traffic must fully unwind it again.
        feed_until(c, CALM, 128, "governor unwinds the throttle after calm traffic", |s| {
            !s.mba_level.is_throttled() && s.severity == Severity::Nominal
        })?;
    }

    if entry.admission_control {
        // A throttled near-saturation hover must shed load...
        feed_until(c, HOVER, 256, "admission sheds a BE under sustained throttled hover", |s| {
            s.admitted_bes.is_some_and(|a| (a as usize) < N_BES)
        })?;
        if c.summary().severity != Severity::Critical {
            return Err(format!(
                "shedding load must be critical, got {:?}",
                c.summary().severity
            ));
        }
        // ...and sustained calm must re-admit every BE and finish nominal.
        feed_until(c, CALM, 256, "admission re-admits evicted BEs after sustained calm", |s| {
            s.admitted_bes == Some(N_BES as u32) && s.severity == Severity::Nominal
        })?;
    }
    Ok(())
}

fn cooldown_backoff<C: Controller + ?Sized>(c: &mut C) -> Result<(), String> {
    // Unfixable saturation: HP IPC grows with its allocation, so every
    // sweep concludes that the largest allocation is best and the
    // controller must back off instead of resampling forever. Gaps between
    // sampling bursts (periods whose sampling counter does not move) must
    // be non-trivial and non-decreasing.
    c.initial_plan(N_WAYS);
    let mut gaps: Vec<u32> = Vec::new();
    let mut gap: u32 = 0;
    let mut hp_ways = N_WAYS - 1;
    let mut prev_sampling = c.summary().counters.sampling_periods;
    for _ in 0..400 {
        // IPC tracks the allocation in force: more cache, more IPC.
        let ipc = 0.1 + 0.05 * hp_ways as f64;
        let d = drive(c, Feed::S(ipc, 5.0, 60.0))?;
        if let PartitionPlan::Split { hp_ways: w } = d.plan {
            hp_ways = w;
        }
        let sampling = c.summary().counters.sampling_periods;
        if sampling > prev_sampling {
            if gap > 0 {
                gaps.push(gap);
                gap = 0;
            }
        } else {
            gap += 1;
        }
        prev_sampling = sampling;
    }
    if gaps.len() < 2 {
        return Err(format!(
            "saw {} inter-sweep gaps in 400 saturated periods — cannot observe backoff",
            gaps.len()
        ));
    }
    if gaps.windows(2).any(|w| w[1] < w[0]) {
        return Err(format!("inter-sweep cooldowns shrank under unfixable saturation: {gaps:?}"));
    }
    let (first, last) = (gaps[0], *gaps.last().unwrap());
    if last <= first {
        return Err(format!(
            "cooldown never backed off: first gap {first}, last gap {last} ({gaps:?})"
        ));
    }
    Ok(())
}

fn missing_period_holdover<C: Controller + ?Sized>(c: &mut C) -> Result<(), String> {
    c.initial_plan(N_WAYS);
    drive(c, CALM)?;
    let settled = drive(c, CALM)?;
    let before = c.summary();
    let held = drive(c, Feed::Missing)?;
    let after = c.summary();
    if held.plan != settled.plan {
        return Err(format!(
            "a dropped sample moved the plan {:?} -> {:?}",
            settled.plan, held.plan
        ));
    }
    if held.mba_level != settled.mba_level {
        return Err("a dropped sample moved the throttle".into());
    }
    if held.admitted_bes != settled.admitted_bes {
        return Err("a dropped sample changed admission".into());
    }
    if after.state != before.state || after.severity != before.severity {
        return Err(format!(
            "a dropped sample moved state/severity ({:?},{:?}) -> ({:?},{:?})",
            before.state, before.severity, after.state, after.severity
        ));
    }
    if after.counters.missing_periods != before.counters.missing_periods + 1 {
        return Err("the dropped sample was not counted as missing".into());
    }
    // The holdover must not have poisoned the loop: the next delivered calm
    // sample keeps operating normally (no reset, severity still nominal).
    drive(c, CALM)?;
    if c.summary().counters.resets != before.counters.resets {
        return Err("the first delivered sample after a drop triggered a reset".into());
    }
    Ok(())
}

fn summary_consistent<C: Controller + ?Sized>(c: &mut C) -> Result<(), String> {
    // A mixed feed — calm, saturation, a sweep, drops, an IPC collapse —
    // driven purely through the invariant checker in `drive`: every step
    // must keep the summary consistent with the decision.
    c.initial_plan(N_WAYS);
    let ladder = SamplingStrategy::Geometric.candidates(N_WAYS);
    drive(c, CALM)?;
    drive(c, CALM)?;
    drive(c, Feed::Missing)?;
    drive(c, HOT)?;
    for _ in 0..ladder.len() {
        drive(c, CALM)?;
    }
    drive(c, Feed::S(0.2, 5.0, 20.0))?; // IPC collapse: degradation reset
    drive(c, Feed::Missing)?;
    for _ in 0..8 {
        drive(c, HOVER)?;
    }
    for _ in 0..8 {
        drive(c, CALM)?;
    }
    // And the state label must be one the controller also exposes through
    // the policy facade's span labelling (non-empty, stable str).
    if c.summary().state.is_empty() {
        return Err("empty state label after a mixed feed".into());
    }
    Ok(())
}

/// How many periods of sustained saturation the signal gets to climb to
/// at least [`Severity::Degraded`] before the clause fails.
const PLACEMENT_DETECT_CAP: u32 = 64;
/// How many hover periods the signal must hold above nominal without a
/// single flap — comfortably longer than any fleet migration streak.
const PLACEMENT_HOLD_PERIODS: u32 = 64;

fn placement_signal<C: Controller + ?Sized>(
    c: &mut C,
    entry: &ContractEntry,
) -> Result<(), String> {
    if !entry.placement_signal {
        // The row does not claim a stable ladder; nothing to check. The
        // fleet scheduler must simply not pick this controller.
        return Ok(());
    }
    c.initial_plan(N_WAYS);
    // Calm traffic must not excite the signal.
    for i in 0..4 {
        drive(c, CALM)?;
        let sev = c.summary().severity;
        if sev != Severity::Nominal {
            return Err(format!("calm period {i} raised the placement signal to {sev:?}"));
        }
    }
    // Sustained saturation must ratchet the signal to at least Degraded —
    // the floor the fleet's migration trigger keys its streak on.
    feed_until(c, HOT, PLACEMENT_DETECT_CAP, "placement signal reaches degraded", |s| {
        s.severity >= Severity::Degraded
    })?;
    // Once detected, a near-saturation hover must hold the signal above
    // nominal on *every* period: a ladder that flaps back to nominal
    // between sampling sweeps resets severity streaks and makes the
    // migration trigger unreachable under exactly the load it exists for.
    for i in 0..PLACEMENT_HOLD_PERIODS {
        drive(c, HOVER)?;
        if c.summary().severity == Severity::Nominal {
            return Err(format!("placement signal flapped to nominal at hover period {i}"));
        }
    }
    // And the signal must stand down once the contention clears, so a
    // migrated-away-from node becomes a placement target again.
    feed_until(c, CALM, 256, "placement signal returns to nominal after calm", |s| {
        s.severity == Severity::Nominal
    })?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::ControllerRegistry;

    #[test]
    fn every_standard_controller_passes_the_contract() {
        let violations = check_registry(&ControllerRegistry::standard());
        assert!(
            violations.is_empty(),
            "contract violations:\n{}",
            violations.iter().map(|v| format!("  {v}")).collect::<Vec<_>>().join("\n")
        );
    }

    #[test]
    fn every_registered_controller_has_a_contract_row() {
        for spec in ControllerRegistry::standard().specs() {
            assert!(
                contract_entry(spec.name).is_some(),
                "registered controller {:?} has no CONTRACT_TABLE row",
                spec.name
            );
        }
    }

    #[test]
    fn an_unlisted_controller_fails_with_the_table_entry_clause() {
        let spec = crate::ControllerSpec {
            name: "mystery",
            display: "MYSTERY",
            build: || Box::new(crate::Dicer::new(crate::DicerConfig::default())),
        };
        let violations = run_contract(&spec);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].clause, Clause::TableEntry);
        assert_eq!(violations[0].clause.as_str(), "table-entry");
        assert!(violations[0].to_string().contains("mystery"));
    }

    #[test]
    fn a_misconfigured_controller_is_named_with_its_violated_clause() {
        // DCP-QoS (threshold pushed to 1e9) never detects contention — the
        // exact controller the contract must reject, with the right clause.
        let spec = crate::ControllerSpec {
            name: "dicer", // reuse the table row; the build is what differs
            display: "DCP-QOS",
            build: || {
                Box::new(crate::Dicer::with_name(crate::DicerConfig::dcp_qos(), "DCP-QOS"))
            },
        };
        let violations = run_contract(&spec);
        assert!(
            violations.iter().any(|v| v.clause == Clause::DetectsContention),
            "expected a detects-contention violation, got: {violations:?}"
        );
    }

    #[test]
    fn a_flapping_ladder_fails_the_placement_signal_clause() {
        // Plain dicer's severity drops back to nominal between backoff
        // sweeps under unfixable saturation — fine for its own row (which
        // does not claim the signal), fatal under a row that does.
        let spec = crate::ControllerSpec {
            name: "dicer-mba", // this row claims placement_signal
            display: "FLAPPY",
            build: || Box::new(crate::Dicer::new(crate::DicerConfig::default())),
        };
        let violations = run_contract(&spec);
        assert!(
            violations.iter().any(|v| v.clause == Clause::PlacementSignal),
            "expected a placement-signal violation, got: {violations:?}"
        );
    }

    #[test]
    fn the_placement_signal_rows_match_the_fleet_contract() {
        // The fleet's standard mix migrates on a severity streak; every
        // controller it may run must claim (and pass) the signal clause.
        assert!(!contract_entry("dicer").unwrap().placement_signal);
        assert!(contract_entry("dicer-mba").unwrap().placement_signal);
        assert!(contract_entry("dicer-adm").unwrap().placement_signal);
    }

    #[test]
    fn scripts_catch_wrong_expectations() {
        let mut d = crate::Dicer::new(crate::DicerConfig::default());
        d.initial_plan(N_WAYS);
        // Expecting the wrong ways must fail with the step index.
        let err = run_script(&mut d, &[s(1.0, 5.0, 20.0, 7, "optimising")]).unwrap_err();
        assert!(err.contains("script step 0"), "{err}");
    }
}
