//! Co-location policies: the DICER controller and the paper's baselines.
//!
//! All policies implement [`Policy`]: once per monitoring period they
//! receive the period's counters ([`dicer_rdt::PeriodSample`]) and return
//! the [`dicer_rdt::PartitionPlan`] to enforce for the next period.
//!
//! * [`Unmanaged`] — the UM baseline: no control at all.
//! * [`CacheTakeover`] — the CT baseline: HP statically owns all but one way.
//! * [`StaticPartition`] — any fixed split (used for the Fig. 3 sweep).
//! * [`Dicer`] — the paper's contribution (Listings 1–3): adapts HP's
//!   allocation every period, samples allocations under bandwidth
//!   saturation, detects phase changes, and resets when its last move hurt.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod baseline;
pub mod conformance;
pub mod controller;
pub mod dicer;
pub mod mba;

pub use baseline::{CacheTakeover, StaticOverlap, StaticPartition, Unmanaged};
pub use controller::{
    Controller, ControllerPolicy, ControllerRegistry, ControllerSpec, Decision, Observation,
    Severity, Summary,
};
pub use dicer::{Dicer, DicerConfig, DicerState, DicerStats, SamplingStrategy};
pub use admission::{AdmissionState, DicerAdmission};
pub use mba::{DicerMba, MbaState};

use dicer_rdt::{MbaLevel, PartitionPlan, PeriodSample};
use dicer_telemetry::Telemetry;

/// A cache-partitioning policy driven once per monitoring period.
pub trait Policy {
    /// Short, stable policy name (used in experiment output).
    fn name(&self) -> &'static str;
    /// Plan to enforce for the very first period.
    fn initial_plan(&self, n_ways: u32) -> PartitionPlan;
    /// Observe one period's counters and return the plan for the next.
    fn on_period(&mut self, sample: &PeriodSample, n_ways: u32) -> PartitionPlan;
    /// The period elapsed but no counters were delivered (a dropped CMT/MBM
    /// read under fault injection). Stateless policies hold their course;
    /// adaptive controllers override this to advance their period clock
    /// without acting on invented data.
    fn on_missing_period(&mut self, n_ways: u32) -> PartitionPlan {
        self.initial_plan(n_ways)
    }
    /// Attach a telemetry handle: instrumented policies emit a structured
    /// event for every decision they take. The static baselines take no
    /// decisions, so the default implementation ignores the handle.
    fn set_telemetry(&mut self, _telemetry: Telemetry) {}
    /// MBA throttle to program on the BE class for the next period.
    /// Policies without a bandwidth loop leave it unthrottled.
    fn mba_level(&self) -> MbaLevel {
        MbaLevel::FULL
    }
    /// Number of BEs that should stay scheduled next period (`None` = all).
    /// Only admission-controlling policies override this.
    fn admitted_bes(&self) -> Option<u32> {
        None
    }
    /// Stable label of the controller's current state, if the policy is a
    /// state machine (used to label `policy_step` tracing spans). Static
    /// baselines have no state and return `None`.
    fn state_label(&self) -> Option<&'static str> {
        None
    }
}

/// Boxed policies are policies too, so generic runtimes (the `Session`
/// period loop) drive a `PolicyKind::build()` product and a concrete
/// controller through the same code path.
impl Policy for Box<dyn Policy + Send> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn initial_plan(&self, n_ways: u32) -> PartitionPlan {
        (**self).initial_plan(n_ways)
    }
    fn on_period(&mut self, sample: &PeriodSample, n_ways: u32) -> PartitionPlan {
        (**self).on_period(sample, n_ways)
    }
    fn on_missing_period(&mut self, n_ways: u32) -> PartitionPlan {
        (**self).on_missing_period(n_ways)
    }
    fn set_telemetry(&mut self, telemetry: Telemetry) {
        (**self).set_telemetry(telemetry);
    }
    fn mba_level(&self) -> MbaLevel {
        (**self).mba_level()
    }
    fn admitted_bes(&self) -> Option<u32> {
        (**self).admitted_bes()
    }
    fn state_label(&self) -> Option<&'static str> {
        (**self).state_label()
    }
}

/// Value-level policy selector, convenient for experiment matrices.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicyKind {
    /// Unmanaged sharing.
    Unmanaged,
    /// Static cache takeover.
    CacheTakeover,
    /// Fixed HP allocation of the given ways.
    Static(u32),
    /// Fixed overlapping plan `(hp_exclusive, shared)` — §6 future work.
    Overlap(u32, u32),
    /// The DICER controller.
    Dicer(DicerConfig),
    /// DICER plus dynamic memory-bandwidth throttling (future work of the
    /// paper, §6).
    DicerMba(DicerConfig),
    /// DCP-QoS (related work, §5): DICER's loop without saturation handling.
    DcpQos,
    /// DICER with MBA throttling and dynamic BE admission (future work, §6).
    DicerAdmission(DicerConfig),
}

impl PolicyKind {
    /// Instantiates the policy. The controller-family kinds come wrapped in
    /// [`ControllerPolicy`], which adds the framework services (status
    /// telemetry, span state labels) on top of the bit-identical decision
    /// stream of the bare controller.
    pub fn build(&self) -> Box<dyn Policy + Send> {
        match self {
            PolicyKind::Unmanaged => Box::new(Unmanaged),
            PolicyKind::CacheTakeover => Box::new(CacheTakeover),
            PolicyKind::Static(w) => Box::new(StaticPartition::new(*w)),
            PolicyKind::Overlap(e, s) => Box::new(StaticOverlap::new(*e, *s)),
            PolicyKind::Dicer(cfg) => Box::new(ControllerPolicy::new(Dicer::new(cfg.clone()))),
            PolicyKind::DicerMba(cfg) => {
                Box::new(ControllerPolicy::new(DicerMba::new(cfg.clone())))
            }
            PolicyKind::DcpQos => Box::new(ControllerPolicy::new(Dicer::with_name(
                DicerConfig::dcp_qos(),
                "DCP-QOS",
            ))),
            PolicyKind::DicerAdmission(cfg) => {
                Box::new(ControllerPolicy::new(DicerAdmission::new(cfg.clone())))
            }
        }
    }

    /// Stable display name.
    pub fn name(&self) -> &'static str {
        match self {
            PolicyKind::Unmanaged => "UM",
            PolicyKind::CacheTakeover => "CT",
            PolicyKind::Static(_) => "STATIC",
            PolicyKind::Overlap(..) => "OVERLAP",
            PolicyKind::Dicer(_) => "DICER",
            PolicyKind::DicerMba(_) => "DICER+MBA",
            PolicyKind::DcpQos => "DCP-QOS",
            PolicyKind::DicerAdmission(_) => "DICER+ADM",
        }
    }
}
